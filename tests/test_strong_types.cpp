// Unit tests for the strong value types (sim/types.h): typed ids and
// simulation time. These lock the properties the tree-wide conversion
// relies on — zero-cost layout, closed arithmetic, hashing, ordering,
// and byte-stable %.9g formatting at the JSON emission boundary.
#include "sim/types.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "net/packet.h"

namespace scda::sim {
namespace {

// --- compile-time contract ---------------------------------------------------

// Zero-cost: a StrongId is layout-identical to its representation and a
// SimTime to its int64 nanosecond count; passing either by value is
// passing the raw rep.
static_assert(sizeof(net::NodeId) == sizeof(net::NodeId::rep_type));
static_assert(sizeof(SimTime) == sizeof(SimTime::rep_type));
static_assert(sizeof(SimTime) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<net::NodeId>);
static_assert(std::is_trivially_copyable_v<SimTime>);

// No implicit conversions in or out, and distinct id spaces do not mix.
static_assert(!std::is_convertible_v<int, net::NodeId>);
static_assert(!std::is_convertible_v<net::NodeId, int>);
static_assert(!std::is_convertible_v<net::NodeId, net::LinkId>);
static_assert(!std::is_convertible_v<net::FlowId, net::NodeId>);
static_assert(!std::is_convertible_v<double, SimTime>);
static_assert(!std::is_convertible_v<SimTime, double>);
// No direct construction from raw numbers at all: every double -> time
// conversion must go through the named (rounding) factories.
static_assert(!std::is_constructible_v<SimTime, double>);
static_assert(!std::is_constructible_v<SimTime, std::int64_t>);

TEST(StrongId, ValueRoundTripAndValidity) {
  const net::NodeId n{7};
  EXPECT_EQ(n.value(), 7);
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.index(), 7u);
  EXPECT_EQ(net::NodeId::from_index(7u), n);

  const net::NodeId invalid{-1};
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(net::NodeId{}.valid());  // default is Rep{} == 0
  EXPECT_EQ(net::NodeId{}.value(), 0);
}

TEST(StrongId, OrderingAndEquality) {
  const net::FlowId a{1};
  const net::FlowId b{2};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == net::FlowId{1});
}

TEST(StrongId, IncrementGeneratesSequentialIds) {
  net::FlowId id{5};
  EXPECT_EQ((id++).value(), 5);
  EXPECT_EQ(id.value(), 6);
  EXPECT_EQ((++id).value(), 7);
}

TEST(StrongId, HashMatchesRepHashAndWorksInUnorderedContainers) {
  const net::LinkId l{42};
  EXPECT_EQ(std::hash<net::LinkId>{}(l),
            std::hash<net::LinkId::rep_type>{}(l.value()));

  std::unordered_map<net::FlowId, double> m;
  m[net::FlowId{1}] = 1.5;
  m[net::FlowId{2}] = 2.5;
  EXPECT_DOUBLE_EQ(m.at(net::FlowId{1}), 1.5);
  EXPECT_EQ(m.count(net::FlowId{3}), 0u);

  std::unordered_set<net::NodeId> s{net::NodeId{0}, net::NodeId{0},
                                    net::NodeId{9}};
  EXPECT_EQ(s.size(), 2u);
}

// --- SimTime -----------------------------------------------------------------

TEST(SimTime, ArithmeticIsClosedAndExact) {
  const SimTime a = secs(1.25);
  const SimTime b = secs(0.75);
  EXPECT_EQ((a + b).nanos(), 2'000'000'000);
  EXPECT_EQ((a - b).nanos(), 500'000'000);
  EXPECT_EQ((-a).nanos(), -1'250'000'000);
  EXPECT_EQ((a * 2.0).nanos(), 2'500'000'000);
  EXPECT_EQ((2.0 * a).nanos(), 2'500'000'000);
  EXPECT_EQ((a / 2.0).nanos(), 625'000'000);
  EXPECT_DOUBLE_EQ(a / b, 1.25 / 0.75);  // ratio is a scalar

  SimTime t{};
  t += a;
  t -= b;
  EXPECT_EQ(t.nanos(), 500'000'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.5);
}

TEST(SimTime, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(secs(0.05).nanos(), 50'000'000);
  EXPECT_EQ(secs(1e-9).nanos(), 1);
  EXPECT_EQ(secs(0.49e-9).nanos(), 0);    // below half a nanosecond
  EXPECT_EQ(secs(0.51e-9).nanos(), 1);    // above half a nanosecond
  EXPECT_EQ(secs(-0.51e-9).nanos(), -1);  // symmetric for negative times
  EXPECT_EQ(secs(-1.25).nanos(), -1'250'000'000);
  EXPECT_EQ(nanos(42).nanos(), 42);
  EXPECT_EQ(SimTime::from_nanos(-7).nanos(), -7);
}

TEST(SimTime, AccumulationNeverDrifts) {
  // The bug this representation kills: repeatedly adding a step whose
  // double-of-seconds encoding is inexact (5e-6 here) made deadlines
  // drift a few ulps from t0 + n*step, which the link layer had to paper
  // over with a delivery clamp. Integer nanoseconds accumulate exactly.
  const SimTime step = secs(5e-6);  // 5000 ns exactly
  SimTime t{};
  constexpr int kRoundTrips = 10'000'000;
  for (int i = 0; i < kRoundTrips; ++i) t += step;
  EXPECT_EQ(t.nanos(), 5'000 * static_cast<std::int64_t>(kRoundTrips));
  for (int i = 0; i < kRoundTrips; ++i) t -= step;
  EXPECT_EQ(t.nanos(), 0);
  EXPECT_TRUE(t == SimTime::zero());
}

TEST(SimTime, OrderingTotalAndConsistent) {
  const SimTime early = secs(1.0);
  const SimTime late = secs(2.0);
  EXPECT_TRUE(early < late);
  EXPECT_TRUE(early <= late);
  EXPECT_TRUE(late > early);
  EXPECT_TRUE(late >= early);
  EXPECT_TRUE(early != late);
  EXPECT_TRUE(secs(2.0) == late);
  EXPECT_TRUE(SimTime::zero() < early);
}

TEST(SimTime, SecsHelperAndDefaultAreExact) {
  EXPECT_DOUBLE_EQ(secs(0.05).seconds(), 0.05);
  EXPECT_DOUBLE_EQ(SimTime{}.seconds(), 0.0);
  EXPECT_TRUE(SimTime{} == SimTime::zero());
}

TEST(SimTime, HashesTheIntegerRepresentation) {
  EXPECT_EQ(std::hash<SimTime>{}(secs(3.5)),
            std::hash<std::int64_t>{}(std::int64_t{3'500'000'000}));
  // Regression (the double-hash bug): 0.0 and -0.0 seconds are the same
  // time and must land in the same unordered-container bucket. With
  // std::hash<double> they were allowed to hash differently; the integer
  // representation has exactly one encoding for zero.
  EXPECT_TRUE(secs(0.0) == secs(-0.0));
  EXPECT_EQ(std::hash<SimTime>{}(secs(0.0)), std::hash<SimTime>{}(secs(-0.0)));
  std::unordered_set<SimTime> set{secs(0.0), secs(-0.0)};
  EXPECT_EQ(set.size(), 1u);
}

// --- %.9g formatting stability ----------------------------------------------

// Every JSON emitter in the tree prints times as %.9g of .seconds().
// seconds() is a pure function of the integer count, so the formatted
// bytes are too; lock the representative values the figures emit.
std::string fmt9g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

TEST(SimTime, Format9gIsAPureFunctionOfTheCount) {
  const double samples[] = {0.0,  1.0,         0.05, 1e-9, 123456789.0,
                            5e-6, 2.000000001, -0.25, 60.0, 3.1415926535897931};
  for (const double v : samples) {
    const SimTime t = secs(v);
    // Deterministic: re-deriving the double from the count is bit-stable.
    EXPECT_EQ(fmt9g(t.seconds()),
              fmt9g(static_cast<double>(t.nanos()) * 1e-9))
        << "sample " << v;
    // And for values that are exact multiples of 1 ns, the quantized
    // time formats byte-identically to the raw double.
    EXPECT_EQ(fmt9g(t.seconds()), fmt9g(v)) << "sample " << v;
  }
}

TEST(StrongId, FormattingGoesThroughValue) {
  // Ids print through value() with integer formats; lock the idiom used
  // by the emitters (e.g. "flow_%d" with FlowId::value()).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(net::FlowId{37}.value()));
  EXPECT_STREQ(buf, "37");
}

}  // namespace
}  // namespace scda::sim
