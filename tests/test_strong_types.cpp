// Unit tests for the strong value types (sim/types.h): typed ids,
// simulation time and dimensioned quantities (BitRate / ByteCount /
// BitCount). These lock the properties the tree-wide conversion relies
// on — zero-cost layout, closed arithmetic, the cross-dimension algebra,
// hashing, ordering, and byte-stable %.9g formatting at the JSON
// emission boundary.
#include "sim/types.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>

#include "net/packet.h"

namespace scda::sim {
namespace {

// --- compile-time contract ---------------------------------------------------

// Zero-cost: a StrongId is layout-identical to its representation and a
// SimTime to its int64 nanosecond count; passing either by value is
// passing the raw rep.
static_assert(sizeof(net::NodeId) == sizeof(net::NodeId::rep_type));
static_assert(sizeof(SimTime) == sizeof(SimTime::rep_type));
static_assert(sizeof(SimTime) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<net::NodeId>);
static_assert(std::is_trivially_copyable_v<SimTime>);

// No implicit conversions in or out, and distinct id spaces do not mix.
static_assert(!std::is_convertible_v<int, net::NodeId>);
static_assert(!std::is_convertible_v<net::NodeId, int>);
static_assert(!std::is_convertible_v<net::NodeId, net::LinkId>);
static_assert(!std::is_convertible_v<net::FlowId, net::NodeId>);
static_assert(!std::is_convertible_v<double, SimTime>);
static_assert(!std::is_convertible_v<SimTime, double>);
// No direct construction from raw numbers at all: every double -> time
// conversion must go through the named (rounding) factories.
static_assert(!std::is_constructible_v<SimTime, double>);
static_assert(!std::is_constructible_v<SimTime, std::int64_t>);

TEST(StrongId, ValueRoundTripAndValidity) {
  const net::NodeId n{7};
  EXPECT_EQ(n.value(), 7);
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.index(), 7u);
  EXPECT_EQ(net::NodeId::from_index(7u), n);

  const net::NodeId invalid{-1};
  EXPECT_FALSE(invalid.valid());
  EXPECT_TRUE(net::NodeId{}.valid());  // default is Rep{} == 0
  EXPECT_EQ(net::NodeId{}.value(), 0);
}

TEST(StrongId, OrderingAndEquality) {
  const net::FlowId a{1};
  const net::FlowId b{2};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == net::FlowId{1});
}

TEST(StrongId, IncrementGeneratesSequentialIds) {
  net::FlowId id{5};
  EXPECT_EQ((id++).value(), 5);
  EXPECT_EQ(id.value(), 6);
  EXPECT_EQ((++id).value(), 7);
}

TEST(StrongId, HashMatchesRepHashAndWorksInUnorderedContainers) {
  const net::LinkId l{42};
  EXPECT_EQ(std::hash<net::LinkId>{}(l),
            std::hash<net::LinkId::rep_type>{}(l.value()));

  std::unordered_map<net::FlowId, double> m;
  m[net::FlowId{1}] = 1.5;
  m[net::FlowId{2}] = 2.5;
  EXPECT_DOUBLE_EQ(m.at(net::FlowId{1}), 1.5);
  EXPECT_EQ(m.count(net::FlowId{3}), 0u);

  std::unordered_set<net::NodeId> s{net::NodeId{0}, net::NodeId{0},
                                    net::NodeId{9}};
  EXPECT_EQ(s.size(), 2u);
}

// --- SimTime -----------------------------------------------------------------

TEST(SimTime, ArithmeticIsClosedAndExact) {
  const SimTime a = secs(1.25);
  const SimTime b = secs(0.75);
  EXPECT_EQ((a + b).nanos(), 2'000'000'000);
  EXPECT_EQ((a - b).nanos(), 500'000'000);
  EXPECT_EQ((-a).nanos(), -1'250'000'000);
  EXPECT_EQ((a * 2.0).nanos(), 2'500'000'000);
  EXPECT_EQ((2.0 * a).nanos(), 2'500'000'000);
  EXPECT_EQ((a / 2.0).nanos(), 625'000'000);
  EXPECT_DOUBLE_EQ(a / b, 1.25 / 0.75);  // ratio is a scalar

  SimTime t{};
  t += a;
  t -= b;
  EXPECT_EQ(t.nanos(), 500'000'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 0.5);
}

TEST(SimTime, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(secs(0.05).nanos(), 50'000'000);
  EXPECT_EQ(secs(1e-9).nanos(), 1);
  EXPECT_EQ(secs(0.49e-9).nanos(), 0);    // below half a nanosecond
  EXPECT_EQ(secs(0.51e-9).nanos(), 1);    // above half a nanosecond
  EXPECT_EQ(secs(-0.51e-9).nanos(), -1);  // symmetric for negative times
  EXPECT_EQ(secs(-1.25).nanos(), -1'250'000'000);
  EXPECT_EQ(nanos(42).nanos(), 42);
  EXPECT_EQ(SimTime::from_nanos(-7).nanos(), -7);
}

TEST(SimTime, AccumulationNeverDrifts) {
  // The bug this representation kills: repeatedly adding a step whose
  // double-of-seconds encoding is inexact (5e-6 here) made deadlines
  // drift a few ulps from t0 + n*step, which the link layer had to paper
  // over with a delivery clamp. Integer nanoseconds accumulate exactly.
  const SimTime step = secs(5e-6);  // 5000 ns exactly
  SimTime t{};
  constexpr int kRoundTrips = 10'000'000;
  for (int i = 0; i < kRoundTrips; ++i) t += step;
  EXPECT_EQ(t.nanos(), 5'000 * static_cast<std::int64_t>(kRoundTrips));
  for (int i = 0; i < kRoundTrips; ++i) t -= step;
  EXPECT_EQ(t.nanos(), 0);
  EXPECT_TRUE(t == SimTime::zero());
}

TEST(SimTime, OrderingTotalAndConsistent) {
  const SimTime early = secs(1.0);
  const SimTime late = secs(2.0);
  EXPECT_TRUE(early < late);
  EXPECT_TRUE(early <= late);
  EXPECT_TRUE(late > early);
  EXPECT_TRUE(late >= early);
  EXPECT_TRUE(early != late);
  EXPECT_TRUE(secs(2.0) == late);
  EXPECT_TRUE(SimTime::zero() < early);
}

TEST(SimTime, SecsHelperAndDefaultAreExact) {
  EXPECT_DOUBLE_EQ(secs(0.05).seconds(), 0.05);
  EXPECT_DOUBLE_EQ(SimTime{}.seconds(), 0.0);
  EXPECT_TRUE(SimTime{} == SimTime::zero());
}

TEST(SimTime, HashesTheIntegerRepresentation) {
  EXPECT_EQ(std::hash<SimTime>{}(secs(3.5)),
            std::hash<std::int64_t>{}(std::int64_t{3'500'000'000}));
  // Regression (the double-hash bug): 0.0 and -0.0 seconds are the same
  // time and must land in the same unordered-container bucket. With
  // std::hash<double> they were allowed to hash differently; the integer
  // representation has exactly one encoding for zero.
  EXPECT_TRUE(secs(0.0) == secs(-0.0));
  EXPECT_EQ(std::hash<SimTime>{}(secs(0.0)), std::hash<SimTime>{}(secs(-0.0)));
  std::unordered_set<SimTime> set{secs(0.0), secs(-0.0)};
  EXPECT_EQ(set.size(), 1u);
}

// --- %.9g formatting stability ----------------------------------------------

// Every JSON emitter in the tree prints times as %.9g of .seconds().
// seconds() is a pure function of the integer count, so the formatted
// bytes are too; lock the representative values the figures emit.
std::string fmt9g(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

TEST(SimTime, Format9gIsAPureFunctionOfTheCount) {
  const double samples[] = {0.0,  1.0,         0.05, 1e-9, 123456789.0,
                            5e-6, 2.000000001, -0.25, 60.0, 3.1415926535897931};
  for (const double v : samples) {
    const SimTime t = secs(v);
    // Deterministic: re-deriving the double from the count is bit-stable.
    EXPECT_EQ(fmt9g(t.seconds()),
              fmt9g(static_cast<double>(t.nanos()) * 1e-9))
        << "sample " << v;
    // And for values that are exact multiples of 1 ns, the quantized
    // time formats byte-identically to the raw double.
    EXPECT_EQ(fmt9g(t.seconds()), fmt9g(v)) << "sample " << v;
  }
}

TEST(StrongId, FormattingGoesThroughValue) {
  // Ids print through value() with integer formats; lock the idiom used
  // by the emitters (e.g. "flow_%d" with FlowId::value()).
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(net::FlowId{37}.value()));
  EXPECT_STREQ(buf, "37");
}

// --- Quantity<Unit, Rep> -----------------------------------------------------

// Zero-cost layout, same contract as StrongId/SimTime.
static_assert(sizeof(BitRate) == sizeof(double));
static_assert(sizeof(ByteCount) == sizeof(std::int64_t));
static_assert(sizeof(BitCount) == sizeof(std::int64_t));
static_assert(std::is_trivially_copyable_v<BitRate>);
static_assert(std::is_trivially_copyable_v<ByteCount>);

// No implicit conversion in or out: a raw double cannot silently become a
// rate, and a rate cannot silently decay back to a double.
static_assert(!std::is_convertible_v<double, BitRate>);
static_assert(!std::is_convertible_v<BitRate, double>);
static_assert(!std::is_convertible_v<std::int64_t, ByteCount>);
static_assert(!std::is_convertible_v<ByteCount, std::int64_t>);
// Explicit construction from the representation is the entry point.
static_assert(std::is_constructible_v<BitRate, double>);
static_assert(std::is_constructible_v<ByteCount, std::int64_t>);

// Dimensions do not mix: neither conversion nor construction crosses
// BitRate/ByteCount/BitCount, in any direction.
static_assert(!std::is_convertible_v<BitRate, ByteCount>);
static_assert(!std::is_convertible_v<ByteCount, BitRate>);
static_assert(!std::is_convertible_v<ByteCount, BitCount>);
static_assert(!std::is_convertible_v<BitCount, ByteCount>);
static_assert(!std::is_constructible_v<BitRate, ByteCount>);
static_assert(!std::is_constructible_v<ByteCount, BitCount>);

// Cross-dimension arithmetic and comparison do not compile except through
// the named algebra (BitCount/BitRate -> SimTime etc.). Probed with
// requires-expressions so the negative cases are compile-time checked
// without committing ill-formed code.
template <typename A, typename B>
concept Addable = requires(A a, B b) { a + b; };
template <typename A, typename B>
concept LessComparable = requires(A a, B b) { a < b; };
static_assert(Addable<BitRate, BitRate>);
static_assert(!Addable<BitRate, ByteCount>);
static_assert(!Addable<ByteCount, BitCount>);
static_assert(!Addable<BitRate, double>);
static_assert(LessComparable<ByteCount, ByteCount>);
static_assert(!LessComparable<BitRate, ByteCount>);
static_assert(!LessComparable<BitRate, double>);
static_assert(!LessComparable<BitCount, std::int64_t>);

// The algebra itself is constexpr: the allocator's MTU floor is a
// compile-time constant built from a bit count.
static_assert(per_second(bits(12'000)).bps() == 12'000.0);
static_assert(bytes(1'500).bits().bits() == 12'000);
static_assert((2.0 * bps(5e6) + bps(1e6)).bps() == 11e6);

TEST(Quantity, ClosedArithmeticMatchesRawRepresentation) {
  const BitRate a{30e6};
  const BitRate b{20e6};
  EXPECT_DOUBLE_EQ((a + b).bps(), 50e6);
  EXPECT_DOUBLE_EQ((a - b).bps(), 10e6);
  EXPECT_DOUBLE_EQ((-a).bps(), -30e6);
  EXPECT_DOUBLE_EQ((a * 2.0).bps(), 60e6);
  EXPECT_DOUBLE_EQ((0.5 * a).bps(), 15e6);
  EXPECT_DOUBLE_EQ((a / 3.0).bps(), 1e7);
  EXPECT_DOUBLE_EQ(a / b, 1.5);  // same-unit ratio is a scalar

  BitRate acc{};
  acc += a;
  acc -= b;
  EXPECT_DOUBLE_EQ(acc.bps(), 10e6);
}

TEST(Quantity, ByteCountAccumulatesExactly) {
  // The reason counts carry an integer rep: summing per-packet sizes must
  // be exact, not nearest-double. 2^53 would be the first double casualty;
  // int64 byte totals stay exact to ~9.2 EB.
  ByteCount total{};
  const ByteCount mtu{1'500};
  constexpr int kPackets = 10'000'000;
  for (int i = 0; i < kPackets; ++i) total += mtu;
  EXPECT_EQ(total.bytes(), std::int64_t{1'500} * kPackets);
  for (int i = 0; i < kPackets; ++i) total -= mtu;
  EXPECT_EQ(total.bytes(), 0);
  EXPECT_TRUE(total == ByteCount::zero());
  // bits() is the one sanctioned x8, and it is exact for any realistic
  // size (overflow needs 2^60 bytes).
  EXPECT_EQ(ByteCount{1'000'000'000'000}.bits().bits(),
            std::int64_t{8'000'000'000'000});
}

TEST(Quantity, TransferTimeMatchesHandComputedSeconds) {
  // ByteCount / BitRate must reproduce the exact double expression the
  // transport layer wrote by hand (bytes * 8.0 / bps, then the nearest-ns
  // rounding of SimTime::from_seconds).
  const ByteCount frame{1'500};
  const BitRate link{10e6};
  EXPECT_EQ((frame / link).nanos(), secs(1'500 * 8.0 / 10e6).nanos());
  EXPECT_EQ((frame / link).nanos(), 1'200'000);  // 1.2 ms on the nose

  // BitCount / BitRate: queue drain at the allocator's granted rate.
  EXPECT_EQ((bits(1'000'000) / BitRate{95e6}).nanos(),
            secs(1e6 / 95e6).nanos());

  // BitRate * SimTime: bits sent in one control interval, rounded to the
  // nearest whole bit, ties away from zero.
  EXPECT_EQ((BitRate{95e6} * secs(0.05)).bits(), 4'750'000);
  EXPECT_EQ((secs(0.05) * BitRate{95e6}).bits(), 4'750'000);
  EXPECT_EQ((BitRate{10.0} * secs(0.05)).bits(), 1);   // 0.5 rounds up
  EXPECT_EQ((BitRate{-10.0} * secs(0.05)).bits(), -1);  // away from zero
}

TEST(Quantity, OrderingWithinDimension) {
  EXPECT_TRUE(BitRate{1e6} < BitRate{2e6});
  EXPECT_TRUE(BitRate{2e6} >= BitRate{2e6});
  EXPECT_TRUE(ByteCount{5} != ByteCount{6});
  EXPECT_TRUE(bits(8) == bytes(1).bits());
  EXPECT_TRUE(BitRate{} == BitRate::zero());
}

TEST(Quantity, HashMatchesRepHashAndWorksInUnorderedContainers) {
  EXPECT_EQ(std::hash<ByteCount>{}(bytes(42)),
            std::hash<std::int64_t>{}(std::int64_t{42}));
  EXPECT_EQ(std::hash<BitRate>{}(bps(5e6)), std::hash<double>{}(5e6));
  std::unordered_set<ByteCount> sizes{bytes(100), bytes(100), bytes(200)};
  EXPECT_EQ(sizes.size(), 2u);
}

TEST(Quantity, Format9gIsByteStableAcrossTheWrap) {
  // Every JSON/stats emitter prints rates as %.9g of .bps(); wrapping a
  // double in BitRate and unwrapping must be the identity, so committed
  // artifacts stay byte-identical. Representative values from the
  // figures: allocator grants, link capacities, the MTU floor.
  const double samples[] = {0.0,    12'000.0, 95e6, 100e6,       1.5e9,
                            31.4e6, 1e6 / 3.0, 5e-3, 123456789.5, -1.0};
  for (const double v : samples) {
    EXPECT_EQ(fmt9g(BitRate{v}.bps()), fmt9g(v)) << "sample " << v;
  }
  // Exact counts print through the integer rep with integer formats.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(bytes(1'500).bytes()));
  EXPECT_STREQ(buf, "1500");
}

}  // namespace
}  // namespace scda::sim
