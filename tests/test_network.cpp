#include "net/network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace scda::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(sim_) {}

  /// Line topology: n0 - n1 - n2 - n3.
  void build_line() {
    for (int i = 0; i < 4; ++i)
      ids_.push_back(net_.add_node(NodeRole::kOther,
                                   std::string("n") + std::to_string(i)));
    for (int i = 0; i < 3; ++i)
      net_.add_duplex(ids_[i], ids_[i + 1], sim::BitRate{1e6}, 0.001, 1 << 20);
    net_.build_routes();
  }

  sim::Simulator sim_;
  Network net_;
  std::vector<NodeId> ids_;
};

TEST_F(NetworkTest, AddNodeAssignsSequentialIds) {
  EXPECT_EQ(net_.add_node(NodeRole::kClient, "a"), NodeId{0});
  EXPECT_EQ(net_.add_node(NodeRole::kServer, "b"), NodeId{1});
  EXPECT_EQ(net_.node_count(), 2u);
  EXPECT_EQ(net_.node(NodeId{0}).role(), NodeRole::kClient);
  EXPECT_EQ(net_.node(NodeId{1}).name(), "b");
}

TEST_F(NetworkTest, SelfLoopRejected) {
  const auto a = net_.add_node(NodeRole::kOther, "a");
  EXPECT_THROW(net_.add_link(a, a, sim::BitRate{1e6}, 0.001, 1000),
               std::invalid_argument);
}

TEST_F(NetworkTest, BadCapacityRejected) {
  const auto a = net_.add_node(NodeRole::kOther, "a");
  const auto b = net_.add_node(NodeRole::kOther, "b");
  EXPECT_THROW(net_.add_link(a, b, sim::BitRate{0.0}, 0.001, 1000),
               std::invalid_argument);
}

TEST_F(NetworkTest, DuplexCreatesBothDirections) {
  const auto a = net_.add_node(NodeRole::kOther, "a");
  const auto b = net_.add_node(NodeRole::kOther, "b");
  auto [ab, ba] = net_.add_duplex(a, b, sim::BitRate{1e6}, 0.001, 1000);
  EXPECT_EQ(net_.link(ab).from(), a);
  EXPECT_EQ(net_.link(ab).to(), b);
  EXPECT_EQ(net_.link(ba).from(), b);
  EXPECT_EQ(net_.link(ba).to(), a);
}

TEST_F(NetworkTest, NextHopOnLine) {
  build_line();
  EXPECT_EQ(net_.next_hop(ids_[0], ids_[3]), ids_[1]);
  EXPECT_EQ(net_.next_hop(ids_[1], ids_[3]), ids_[2]);
  EXPECT_EQ(net_.next_hop(ids_[3], ids_[0]), ids_[2]);
  EXPECT_EQ(net_.next_hop(ids_[2], ids_[2]), ids_[2]);
}

TEST_F(NetworkTest, PathEnumeratesLinksInOrder) {
  build_line();
  const auto path = net_.path(ids_[0], ids_[3]);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(net_.link(path[0]).from(), ids_[0]);
  EXPECT_EQ(net_.link(path[2]).to(), ids_[3]);
  EXPECT_TRUE(net_.path(ids_[2], ids_[2]).empty());
}

TEST_F(NetworkTest, UnreachableDestinationThrows) {
  const auto a = net_.add_node(NodeRole::kOther, "a");
  const auto b = net_.add_node(NodeRole::kOther, "b");
  const auto c = net_.add_node(NodeRole::kOther, "c");
  net_.add_duplex(a, b, sim::BitRate{1e6}, 0.001, 1000);
  net_.build_routes();
  EXPECT_THROW((void)net_.path(a, c), std::runtime_error);
}

TEST_F(NetworkTest, MutationAfterRoutesBuiltThrows) {
  build_line();
  EXPECT_THROW(net_.add_node(NodeRole::kOther, "x"), std::logic_error);
  EXPECT_THROW(net_.add_link(ids_[0], ids_[2], sim::BitRate{1e6}, 0.001, 1000),
               std::logic_error);
}

TEST_F(NetworkTest, SendDeliversAcrossMultipleHops) {
  build_line();
  Packet got;
  int count = 0;
  net_.node(ids_[3]).set_sink([&](Packet&& p) {
    got = p;
    ++count;
  });
  Packet p = make_data(scda::net::FlowId{5}, ids_[0], ids_[3], 0, 1000,
                       scda::sim::secs(0.0));
  net_.send(std::move(p));
  sim_.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(got.flow, FlowId{5});
  // 3 hops: 3 tx times (1040B @ 1 Mbps = 8.32 ms) + 3 ms propagation
  EXPECT_NEAR(sim_.now().seconds(), 3 * (1040.0 * 8 / 1e6) + 0.003, 1e-9);
}

TEST_F(NetworkTest, PacketToNodeWithoutSinkIsDiscarded) {
  build_line();
  net_.send(make_data(scda::net::FlowId{1}, ids_[0], ids_[2], 0, 100,
                      scda::sim::secs(0.0)));
  EXPECT_NO_THROW(sim_.run());
}

TEST_F(NetworkTest, ShortestPathChosenOverLonger) {
  // Diamond: a-b-d and a-c-d plus direct a-d; direct wins.
  const auto a = net_.add_node(NodeRole::kOther, "a");
  const auto b = net_.add_node(NodeRole::kOther, "b");
  const auto c = net_.add_node(NodeRole::kOther, "c");
  const auto d = net_.add_node(NodeRole::kOther, "d");
  net_.add_duplex(a, b, sim::BitRate{1e6}, 0.001, 1000);
  net_.add_duplex(b, d, sim::BitRate{1e6}, 0.001, 1000);
  net_.add_duplex(a, c, sim::BitRate{1e6}, 0.001, 1000);
  net_.add_duplex(c, d, sim::BitRate{1e6}, 0.001, 1000);
  net_.add_duplex(a, d, sim::BitRate{1e6}, 0.001, 1000);
  net_.build_routes();
  EXPECT_EQ(net_.path(a, d).size(), 1u);
}

TEST_F(NetworkTest, LinkBetweenFindsDirectedLink) {
  build_line();
  const LinkId l = net_.link_between(ids_[0], ids_[1]);
  ASSERT_NE(l, kInvalidLink);
  EXPECT_EQ(net_.link(l).from(), ids_[0]);
  EXPECT_EQ(net_.link_between(ids_[0], ids_[3]), kInvalidLink);
}

}  // namespace
}  // namespace scda::net
