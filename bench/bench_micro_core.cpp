// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and the SCDA control plane: event queue churn, rate-metric math, a full
// allocator tick, the hierarchy max-min pass, FES dispatch, packet
// forwarding and topology construction.
#include <benchmark/benchmark.h>

#include "core/hierarchy.h"
#include "core/path_selector.h"
#include "core/water_filling.h"
#include "net/fat_tree.h"
#include "transport/transport_manager.h"
#include "core/name_node.h"
#include "core/rate_allocator.h"
#include "core/rate_metric.h"
#include "net/topology.h"
#include "sim/simulator.h"

using namespace scda;

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i)
      q.post(sim::secs(static_cast<double>(i % 97)), [] {});
    sim::EventQueue::Fired f;
    while (q.pop(f)) benchmark::DoNotOptimize(f.time);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // RTO pattern: schedule a timer, fire an earlier event, cancel the timer.
  // Exercises cancellation cost and cancelled-entry bookkeeping (the seed
  // design leaked a tombstone per cancel-after-fire).
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    sim::EventQueue::Fired f;
    for (int i = 0; i < n; ++i) {
      const auto t = static_cast<double>(i);
      q.post(sim::secs(t + 0.1), [] {});
      auto rto = q.schedule(sim::secs(t + 5.0), [] {});
      while (q.pop(f)) {
        if (f.time > sim::secs(t + 0.2)) break;  // fired the near event
      }
      q.cancel(rto);
    }
    while (q.pop(f)) benchmark::DoNotOptimize(f.time);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(4096);

void BM_EventLoopThroughput(benchmark::State& state) {
  // Steady-state event-loop rate: `chains` concurrent self-rescheduling
  // timers (the shape of pacing/periodic processes), measured in events/s.
  const int chains = static_cast<int>(state.range(0));
  const std::uint64_t kEvents = 200'000;
  std::uint64_t total = 0;
  for (auto _ : state) {
    sim::Simulator sim(1);
    std::uint64_t fired = 0;
    std::function<void()> tick;
    struct Chain {
      sim::Simulator* sim;
      std::uint64_t* fired;
      std::uint64_t budget;
      double period;
      void fire() {
        ++*fired;
        if (--budget > 0) sim->post_in(sim::secs(period), [this] { fire(); });
      }
    };
    std::vector<Chain> cs;
    cs.reserve(static_cast<std::size_t>(chains));
    for (int i = 0; i < chains; ++i) {
      cs.push_back(Chain{&sim, &fired,
                         kEvents / static_cast<std::uint64_t>(chains),
                         1e-3 * (1.0 + 1e-4 * i)});
    }
    for (auto& c : cs) sim.post_in(sim::secs(c.period), [&c] { c.fire(); });
    sim.run();
    total += fired;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_EventLoopThroughput)->Arg(1)->Arg(64)->Arg(1024);

void BM_LinkPipelineThroughput(benchmark::State& state) {
  // Raw link pipeline: enqueue -> transmit -> propagate -> deliver, with the
  // deliver callback refilling the queue. Measures packets/s through one
  // link with a queue depth of ~32.
  const std::uint64_t kPackets = 100'000;
  std::uint64_t delivered_total = 0;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Link link(sim, net::LinkId{0}, net::NodeId{0}, net::NodeId{1},
                   sim::BitRate{10e9}, 5e-6, 1 << 22);
    std::uint64_t delivered = 0;
    std::uint64_t sent = 0;
    link.set_deliver([&](net::Packet&&) {
      ++delivered;
      if (sent < kPackets) {
        net::Packet p = net::make_data(net::FlowId{1}, net::NodeId{0},
                                       net::NodeId{1}, 0, 1460, sim.now());
        ++sent;
        link.enqueue(std::move(p));
      }
    });
    for (int i = 0; i < 32; ++i) {
      net::Packet p = net::make_data(net::FlowId{1}, net::NodeId{0},
                                     net::NodeId{1}, 0, 1460, sim::Time{});
      ++sent;
      link.enqueue(std::move(p));
    }
    sim.run();
    delivered_total += delivered;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered_total));
}
BENCHMARK(BM_LinkPipelineThroughput);

void BM_LinkSjfDeepQueue(benchmark::State& state) {
  // SJF selection cost at deep queues: `flows` flows, 32 packets each,
  // served to exhaustion. The seed implementation re-scans the whole queue
  // for every transmitted packet (O(n) per packet, O(n^2) per drain).
  const auto flows = static_cast<int>(state.range(0));
  std::uint64_t delivered_total = 0;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::Link link(sim, net::LinkId{0}, net::NodeId{0}, net::NodeId{1},
                   sim::BitRate{10e9}, 5e-6, 1 << 30);
    link.set_discipline(net::QueueDiscipline::kSjf);
    std::uint64_t delivered = 0;
    link.set_deliver([&](net::Packet&&) { ++delivered; });
    for (int i = 0; i < 32; ++i)
      for (int f = 0; f < flows; ++f)
        link.enqueue(net::make_data(net::FlowId{f}, net::NodeId{0},
                                    net::NodeId{1}, 0, 1460, sim::Time{}));
    sim.run();
    delivered_total += delivered;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered_total));
}
BENCHMARK(BM_LinkSjfDeepQueue)->Arg(8)->Arg(128);

void BM_ExactRateMetric(benchmark::State& state) {
  sim::BitRate r{95e6};
  for (auto _ : state) {
    r = core::exact_rate(sim::BitRate{95e6}, 3.0 * r, r,
                         sim::BitRate{12000.0});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ExactRateMetric);

void BM_SimplifiedRateMetric(benchmark::State& state) {
  sim::BitRate r{95e6};
  for (auto _ : state) {
    r = core::simplified_rate(sim::BitRate{95e6},
                              sim::BitCount{4'750'000},  // 95e6 bps * 0.05 s
                              0.05, r, sim::BitRate{12000.0});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SimplifiedRateMetric);

void BM_AllocatorTick(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  sim::Simulator sim(1);
  net::TopologyConfig tc;
  tc.n_agg = 4;
  tc.tors_per_agg = 5;
  tc.servers_per_tor = 8;
  tc.n_clients = 64;
  net::ThreeTierTree topo(sim, tc);
  core::ScdaParams params;
  core::RateAllocator alloc(topo.net(), params);
  sim::Rng rng(2);
  for (int f = 0; f < flows; ++f) {
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, 63));
    const auto s = static_cast<std::size_t>(rng.uniform_int(0, 159));
    alloc.register_flow(net::FlowId{f}, topo.clients()[c], topo.servers()[s]);
  }
  for (auto _ : state) alloc.tick();
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_AllocatorTick)->Arg(100)->Arg(1000)->Arg(5000);

void BM_HierarchyUpdate(benchmark::State& state) {
  sim::Simulator sim(1);
  net::TopologyConfig tc;
  tc.n_agg = 4;
  tc.tors_per_agg = 5;
  tc.servers_per_tor = 8;
  tc.n_clients = 8;
  net::ThreeTierTree topo(sim, tc);
  core::ScdaParams params;
  core::RateAllocator alloc(topo.net(), params);
  core::Hierarchy hier(topo, alloc);
  for (auto _ : state) {
    hier.update();
    benchmark::DoNotOptimize(
        hier.best_server(core::SelectionMetric::kMinUpDown));
  }
  state.SetItemsProcessed(state.iterations() * 160);
}
BENCHMARK(BM_HierarchyUpdate);

void BM_FesDispatch(benchmark::State& state) {
  sim::Simulator sim(1);
  core::NameNode a(sim, 0, 1e-5), b(sim, 1, 1e-5), c(sim, 2, 1e-5),
      d(sim, 3, 1e-5);
  core::FrontEnd fes({&a, &b, &c, &d});
  std::int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(&fes.dispatch_by_content(k++));
  }
}
BENCHMARK(BM_FesDispatch);

void BM_PacketForwarding(benchmark::State& state) {
  // One packet client -> server across the 5-hop tree, repeatedly.
  sim::Simulator sim(1);
  net::TopologyConfig tc;
  tc.n_agg = 2;
  tc.tors_per_agg = 2;
  tc.servers_per_tor = 2;
  tc.n_clients = 2;
  net::ThreeTierTree topo(sim, tc);
  int delivered = 0;
  topo.net().node(topo.servers()[0]).set_sink(
      [&](net::Packet&&) { ++delivered; });
  for (auto _ : state) {
    topo.net().send(net::make_data(net::FlowId{1}, topo.clients()[0],
                                   topo.servers()[0], 0, 1460, sim.now()));
    sim.run();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketForwarding);

void BM_ScdaFlowEndToEnd(benchmark::State& state) {
  // Full 1 MB SCDA transfer across the 5-hop tree, including pacing,
  // acks and completion — the simulator's end-to-end packet rate.
  const std::int64_t kBytes = 1'000'000;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::TopologyConfig tc;
    tc.n_agg = 2;
    tc.tors_per_agg = 2;
    tc.servers_per_tor = 2;
    tc.n_clients = 2;
    net::ThreeTierTree topo(sim, tc);
    transport::TransportManager tm(topo.net());
    auto h = tm.start_scda_flow(topo.clients()[0], topo.servers()[0],
                                kBytes, sim::BitRate{200e6},
                                sim::BitRate{200e6});
    sim.run_until(sim::secs(60.0));
    packets += h.sender->stats().data_packets_sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.SetBytesProcessed(state.iterations() * kBytes);
}
BENCHMARK(BM_ScdaFlowEndToEnd);

void BM_TcpFlowEndToEnd(benchmark::State& state) {
  const std::int64_t kBytes = 1'000'000;
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::TopologyConfig tc;
    tc.n_agg = 2;
    tc.tors_per_agg = 2;
    tc.servers_per_tor = 2;
    tc.n_clients = 2;
    net::ThreeTierTree topo(sim, tc);
    transport::TransportManager tm(topo.net());
    tm.start_tcp_flow(topo.clients()[0], topo.servers()[0], kBytes);
    sim.run_until(sim::secs(120.0));
  }
  state.SetBytesProcessed(state.iterations() * kBytes);
}
BENCHMARK(BM_TcpFlowEndToEnd);

void BM_WaterFill(benchmark::State& state) {
  // Reference allocation for `n` flows over the paper-scale tree.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Simulator sim(1);
  net::TopologyConfig tc;
  net::ThreeTierTree topo(sim, tc);
  sim::Rng rng(3);
  std::vector<core::ReferenceFlow> flows(n);
  std::map<net::LinkId, sim::BitRate> caps;
  for (auto& f : flows) {
    const auto c = static_cast<std::size_t>(rng.uniform_int(0, 63));
    const auto s = static_cast<std::size_t>(rng.uniform_int(0, 159));
    f.path = topo.net().path(topo.clients()[c], topo.servers()[s]);
    f.weight = static_cast<double>(rng.uniform_int(1, 4));
    for (const auto l : f.path)
      caps[l] = topo.net().link(l).capacity();
  }
  for (auto _ : state) {
    auto copy = flows;
    core::water_fill(copy, caps);
    benchmark::DoNotOptimize(copy.front().rate);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WaterFill)->Arg(50)->Arg(500);

void BM_WidestPath(benchmark::State& state) {
  sim::Simulator sim(1);
  net::FatTreeConfig fc;
  fc.k = 4;
  fc.n_clients = 2;
  net::FatTree ft(sim, fc);
  const auto rate = [](net::LinkId l) {
    return sim::BitRate{100e6 + static_cast<double>(l.value() % 7)};
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::widest_path(
        ft.net(), ft.servers()[0], ft.servers()[15], rate));
  }
}
BENCHMARK(BM_WidestPath);

void BM_EcmpPathEnumeration(benchmark::State& state) {
  sim::Simulator sim(1);
  net::FatTreeConfig fc;
  fc.k = static_cast<std::int32_t>(state.range(0));
  fc.n_clients = 2;
  net::FatTree ft(sim, fc);
  const auto last = ft.servers().size() - 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        net::all_shortest_paths(ft.net(), ft.servers()[0],
                                ft.servers()[last]));
  }
}
BENCHMARK(BM_EcmpPathEnumeration)->Arg(4)->Arg(6);

void BM_TopologyBuild(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    net::TopologyConfig tc;  // paper-scale: 160 servers
    net::ThreeTierTree topo(sim, tc);
    benchmark::DoNotOptimize(topo.net().link_count());
  }
}
BENCHMARK(BM_TopologyBuild);

}  // namespace

int main(int argc, char** argv) {
  // The stock `library_build_type` context reports how *libbenchmark* was
  // compiled, not this binary; record our own toolchain so
  // scripts/bench_core.sh can assert the measured code was optimized.
#ifdef NDEBUG
  benchmark::AddCustomContext("scda_toolchain", "optimized");
#else
  benchmark::AddCustomContext("scda_toolchain", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
