// Ablation: QoS by explicit reservation (paper section IV-C).
//
// A tagged flow transfers 10 MB while background load ramps up. Without a
// reservation its FCT degrades with load; with a 50 Mbps minimum-rate
// reservation it stays near the reserved-rate bound.
#include <cstdio>
#include <vector>

#include "core/cloud.h"
#include "harness.h"
#include "util/units.h"

using namespace scda;

namespace {

double tagged_fct(int background_flows, double reserved_bps,
                  std::uint64_t seed) {
  sim::Simulator sim(seed);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  core::Cloud cloud(sim, cfg);

  double fct = -1;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord& rec, const core::CloudOp& op) {
        if (op.content == 999) fct = rec.fct();
      });

  // Background: long flows from the same client (shared uplink bottleneck).
  for (int i = 0; i < background_flows; ++i)
    cloud.write(0, i + 1, util::megabytes(40));
  cloud.write(0, 999, util::megabytes(10),
              transport::ContentClass::kSemiInteractive, 1.0,
              sim::BitRate{reserved_bps});
  sim.run_until(scda::sim::secs(300.0));
  return fct;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf(
      "==== ablation: explicit minimum-rate reservation (sec IV-C) ====\n");
  std::printf(
      "# tagged flow: 10 MB; reservation: 50 Mbps; background: 40 MB flows\n");
  std::printf("%-12s %-20s %-20s\n", "bg_flows", "fct_no_reservation",
              "fct_with_reservation");
  const std::vector<int> bgs = {0, 2, 4, 8};
  // One job per (background load, reservation arm).
  std::vector<double> without(bgs.size()), with_res(bgs.size());
  runner::WorkerPool pool(bench::bench_workers());
  pool.run(bgs.size() * 2, [&](std::size_t j) {
    const int bg = bgs[j / 2];
    if (j % 2 == 0) {
      without[j / 2] = tagged_fct(bg, 0.0, 42);
    } else {
      with_res[j / 2] = tagged_fct(bg, util::mbps(50).bps(), 42);
    }
  });
  for (std::size_t i = 0; i < bgs.size(); ++i)
    std::printf("%-12d %-20.3f %-20.3f\n", bgs[i], without[i], with_res[i]);
  std::printf("# reserved-rate bound: 10 MB / 50 Mbps = %.2f s (+control)\n",
              10e6 * 8 / 50e6);
  return 0;
}
