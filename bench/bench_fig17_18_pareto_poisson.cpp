// Figures 17-18: Pareto file sizes + Poisson arrivals.
//
// Paper section X-B: file sizes Pareto with mean 500 KB and shape 1.6,
// arrivals Poisson with mean 200 flows/s, base bandwidth X = 200 Mbps,
// bandwidth factor K = 3. Expected shape: SCDA sustains higher
// instantaneous throughput and its FCT CDF sits left of RandTCP.
//
// Replication: SCDA_BENCH_SEEDS=N reruns both arms over N derived seeds
// (sharded across SCDA_BENCH_WORKERS threads) and reports mean series with
// stddev/CI summaries; unset, the output matches the single-run harness.
#include "harness.h"
#include "util/units.h"

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  using namespace scda;
  bench::ExperimentConfig cfg;
  cfg.name = "Pareto sizes + Poisson arrivals (figs 17-18)";
  cfg.topology.base_bps = util::mbps(200);  // X = 200 Mbps (paper X-B)
  cfg.topology.k_factor = 3.0;
  cfg.topology.n_clients = 64;
  cfg.driver.end_time_s = 100.0;
  cfg.driver.read_fraction = 0.3;
  cfg.sim_time_s = 120.0;
  cfg.make_generator = [] {
    workload::ParetoPoissonConfig w;  // paper defaults: 500 KB / 1.6 / 200
    return std::make_unique<workload::ParetoPoissonWorkload>(w);
  };

  bench::FigureIds figs;
  figs.throughput_fig = 17;
  figs.cdf_fig = 18;

  bench::AfctBinning bins;
  bins.bin_bytes = 250e3;
  bins.max_bytes = 5e6;

  bench::run_comparison(cfg, figs, bins);
  return 0;
}
