// Figures 10-12: YouTube-like video traces WITHOUT control flows.
//
// Same setup as figures 7-9 but only the >= 5 KB video flows are issued
// (paper section X-A1, second experiment set). Expected shape unchanged:
// SCDA wins on throughput and FCT; transfer times of <= 30 MB videos are
// more than 50-60% smaller than RandTCP.
//
// Replication: SCDA_BENCH_SEEDS=N reruns both arms over N derived seeds
// (sharded across SCDA_BENCH_WORKERS threads) and reports mean series with
// stddev/CI summaries; unset, the output matches the single-run harness.
#include "harness.h"
#include "util/units.h"

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  using namespace scda;
  bench::ExperimentConfig cfg;
  cfg.name = "video traces without control flows (figs 10-12)";
  cfg.topology.base_bps = util::mbps(500);
  cfg.topology.k_factor = 3.0;
  cfg.topology.n_clients = 64;
  cfg.driver.end_time_s = 100.0;
  cfg.driver.read_fraction = 0.35;
  cfg.sim_time_s = 115.0;
  cfg.make_generator = [] {
    workload::VideoWorkloadConfig w;
    w.include_control_flows = false;
    w.video_arrival_rate = 2.0;
    return std::make_unique<workload::VideoWorkload>(w);
  };

  bench::FigureIds figs;
  figs.throughput_fig = 10;
  figs.cdf_fig = 11;
  figs.afct_fig = 12;

  bench::AfctBinning bins;
  bins.bin_bytes = 5e6;
  bins.max_bytes = 90e6;

  bench::run_comparison(cfg, figs, bins);
  return 0;
}
