// Figures 15-16: datacenter traces, bandwidth factor K = 3.
//
// Same mice/elephant datacenter workload as figures 13-14 but with 3x
// aggregation-to-core bandwidth. Expected shape: SCDA AFCT up to ~50%
// lower; more than 60% of SCDA flows see up to 50% smaller transfer time
// (CDF strictly left of RandTCP).
//
// Replication: SCDA_BENCH_SEEDS=N reruns both arms over N derived seeds
// (sharded across SCDA_BENCH_WORKERS threads) and reports mean series with
// stddev/CI summaries; unset, the output matches the single-run harness.
#include "harness.h"
#include "util/units.h"

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  using namespace scda;
  bench::ExperimentConfig cfg;
  cfg.name = "datacenter traces K=3 (figs 15-16)";
  cfg.topology.base_bps = util::mbps(500);
  cfg.topology.k_factor = 3.0;
  cfg.topology.n_agg = 4;
  cfg.topology.tors_per_agg = 5;
  cfg.topology.servers_per_tor = 8;
  cfg.topology.n_clients = 64;
  cfg.driver.end_time_s = 100.0;
  cfg.driver.read_fraction = 0.3;
  cfg.sim_time_s = 120.0;
  cfg.make_generator = [] {
    workload::DatacenterWorkloadConfig w;
    w.arrival_rate = 60.0;
    return std::make_unique<workload::DatacenterWorkload>(w);
  };

  bench::FigureIds figs;
  figs.afct_fig = 15;
  figs.cdf_fig = 16;
  figs.afct_size_unit = 1e3;
  figs.afct_unit_name = "KB";

  bench::AfctBinning bins;
  bins.bin_bytes = 500e3;
  bins.max_bytes = 8e6;

  bench::run_comparison(cfg, figs, bins);
  return 0;
}
