// Ablation: multi-resource allocation (paper section VI-A).
//
// Half the block servers suffer heavy disk background load (R_other cut to
// 40 Mbps). SCDA's RMs fold R_other into R-hat, so (a) selection steers
// new content to healthy servers, and (b) flows that do land on a
// constrained server are rate-limited to what its disk can absorb instead
// of overdriving the network. RandTCP's random selection keeps hitting the
// slow disks.
#include <cstdio>

#include "harness.h"
#include "util/units.h"

using namespace scda;

namespace {

struct MrResult {
  double mean_fct = 0;
  std::uint64_t flows_on_slow = 0;
  std::uint64_t flows_total = 0;
};

MrResult run(core::PlacementPolicy pol, transport::TransportKind tk) {
  sim::Simulator sim(31);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.placement = pol;
  cfg.transport = tk;
  cfg.enable_replication = false;
  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);

  // Even-indexed servers: disks nearly saturated by background scans.
  for (std::size_t s = 0; s < cloud.servers().size(); s += 2) {
    cloud.servers()[s].resources().set_disk(util::mbps(400));
    cloud.servers()[s].resources().set_disk_background(0.9);  // -> 40 Mbps
  }

  MrResult r;
  cloud.add_completion_callback(
      [&](const transport::FlowRecord&, const core::CloudOp& op) {
        ++r.flows_total;
        if (op.server >= 0 && op.server % 2 == 0) ++r.flows_on_slow;
      });

  workload::DriverConfig dc;
  dc.end_time_s = 30.0;
  dc.read_fraction = 0.3;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = 25.0;
  pc.mean_bytes = 800e3;
  pc.cap_bytes = 20 * 1000 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(90.0));
  r.mean_fct = col.summary().mean_fct_s;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: multi-resource (CPU/disk) bottlenecks "
              "(sec VI-A) ====\n");
  std::printf("8/16 servers disk-limited to 40 Mbps by background load\n\n");
  runner::WorkerPool pool(bench::bench_workers());
  MrResult scda, rnd;
  pool.run(2, [&](std::size_t j) {
    if (j == 0) {
      scda = run(core::PlacementPolicy::kScda,
                 transport::TransportKind::kScda);
    } else {
      rnd = run(core::PlacementPolicy::kRandom,
                transport::TransportKind::kTcp);
    }
  });
  std::printf("%-10s mean_fct=%.3fs  flows on disk-limited servers: "
              "%llu/%llu (%.0f%%)\n",
              "SCDA", scda.mean_fct,
              static_cast<unsigned long long>(scda.flows_on_slow),
              static_cast<unsigned long long>(scda.flows_total),
              100.0 * static_cast<double>(scda.flows_on_slow) /
                  static_cast<double>(scda.flows_total));
  std::printf("%-10s mean_fct=%.3fs  flows on disk-limited servers: "
              "%llu/%llu (%.0f%%)\n",
              "RandTCP", rnd.mean_fct,
              static_cast<unsigned long long>(rnd.flows_on_slow),
              static_cast<unsigned long long>(rnd.flows_total),
              100.0 * static_cast<double>(rnd.flows_on_slow) /
                  static_cast<double>(rnd.flows_total));
  std::printf("# SCDA folds R_other into R-hat: placements avoid the slow "
              "disks entirely\n");
  return 0;
}
