// Ablation: switch buffer (drop-tail queue limit) sensitivity.
//
// SCDA's window transport keeps queues near empty (the beta*Q/tau term
// drains standing queues), so it should be nearly insensitive to buffer
// size; TCP's loss-driven control collapses with shallow buffers on these
// high-BDP paths. We sweep the queue limit and compare mean FCT.
#include <cstdio>

#include "harness.h"
#include "util/units.h"

using namespace scda;

namespace {

double run(core::PlacementPolicy pol, transport::TransportKind tk,
           std::int64_t queue_bytes) {
  sim::Simulator sim(11);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.topology.queue_limit_bytes = queue_bytes;
  cfg.placement = pol;
  cfg.transport = tk;
  cfg.enable_replication = false;
  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);

  workload::DriverConfig dc;
  dc.end_time_s = 30.0;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = 30.0;
  pc.cap_bytes = 20 * 1000 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(70.0));
  return col.summary().mean_fct_s;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: switch buffer size sensitivity ====\n");
  std::printf("%-14s %-14s %-14s\n", "queue_pkts", "scda_fct", "randtcp_fct");
  const std::vector<int> sizes = {16, 32, 64, 128, 256, 512};
  // One job per (buffer size, arm): even indices SCDA, odd RandTCP.
  runner::WorkerPool pool(bench::bench_workers());
  std::vector<double> scda_fct(sizes.size()), tcp_fct(sizes.size());
  pool.run(sizes.size() * 2, [&](std::size_t j) {
    const std::int64_t bytes =
        static_cast<std::int64_t>(sizes[j / 2]) * 1500;
    if (j % 2 == 0) {
      scda_fct[j / 2] = run(core::PlacementPolicy::kScda,
                            transport::TransportKind::kScda, bytes);
    } else {
      tcp_fct[j / 2] = run(core::PlacementPolicy::kRandom,
                           transport::TransportKind::kTcp, bytes);
    }
  });
  for (std::size_t i = 0; i < sizes.size(); ++i)
    std::printf("%-14d %-14.3f %-14.3f\n", sizes[i], scda_fct[i], tcp_fct[i]);
  std::printf("# SCDA's allocation keeps queues short, so its FCT should be "
              "flat across buffer sizes\n");
  return 0;
}
