// bench_churn — durability-under-churn ablation behind BENCH_churn.json.
//
// Runs the Pareto/Poisson workload against a cloud with stochastic server
// churn (alternating Exp(MTBF)/Exp(MTTR) renewals from the deterministic
// failure schedule) and compares SCDA rate-metric placement against random
// placement at replication factors k in {1, 2, 3}. Both arms use the SCDA
// transport so the comparison isolates placement: where copies land
// decides how often reads fail over, how much repair traffic the fabric
// carries and how long objects stay under-replicated.
//
// Output is one JSON object on stdout. Every field except wall_s is a
// pure function of the arguments and seed; `checksum` folds the headline
// counters of every cell, so two runs agreeing on it replayed the same
// history (scripts/bench_gate.py consumes the committed baseline).
//
//   bench_churn                          # the committed configuration
//   bench_churn --duration 10 --drain 5  # CI smoke
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/churn.h"
#include "core/cloud.h"
#include "runner/worker_pool.h"
#include "stats/collector.h"
#include "util/args.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/generators.h"

using namespace scda;

namespace {

#ifdef NDEBUG
constexpr const char* kToolchain = "optimized";
#else
constexpr const char* kToolchain = "debug";
#endif

/// splitmix64 fold for the determinism checksum.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct CellSpec {
  core::PlacementPolicy placement = core::PlacementPolicy::kScda;
  std::int32_t replicas = 2;
};

struct CellResult {
  std::uint64_t flows_completed = 0;
  double mean_fct_s = 0;
  std::uint64_t failed_reads = 0;
  std::uint64_t failovers = 0;
  std::uint64_t aborted_flows = 0;
  std::uint64_t repair_flows = 0;
  std::uint64_t repair_bytes = 0;
  std::uint64_t objects_lost = 0;
  std::uint64_t sla_during_repair = 0;
  double under_replicated_s = 0;
  std::uint64_t server_failures = 0;
};

struct BenchArgs {
  double duration_s = 30.0;
  double drain_s = 15.0;
  double arrival_rate = 30.0;
  double mtbf_s = 60.0;
  double mttr_s = 4.0;
  std::uint64_t seed = 1;
};

CellResult run_cell(const CellSpec& spec, const BenchArgs& a) {
  sim::Simulator sim(a.seed);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.placement = spec.placement;
  cfg.transport = transport::TransportKind::kScda;
  cfg.enable_replication = spec.replicas > 1;
  cfg.params.replicas = spec.replicas;
  cfg.churn.enabled = true;
  cfg.churn.server_mtbf_s = a.mtbf_s;
  cfg.churn.server_mttr_s = a.mttr_s;
  cfg.churn.horizon_s = a.duration_s + a.drain_s;
  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);

  workload::DriverConfig dc;
  dc.end_time_s = a.duration_s;
  dc.read_fraction = 0.5;  // failover path needs a read-heavy mix
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = a.arrival_rate;
  pc.cap_bytes = 20 * 1000 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(sim::secs(a.duration_s + a.drain_s));

  CellResult r;
  const stats::Summary s = col.summary();
  r.flows_completed = s.flows;
  r.mean_fct_s = s.mean_fct_s;
  r.failed_reads = cloud.failed_reads();
  const core::ChurnStats& ch = cloud.churn_stats();
  r.failovers = ch.failovers;
  r.aborted_flows = ch.aborted_flows;
  r.repair_flows = ch.repair_flows_completed;
  r.repair_bytes = ch.repair_bytes;
  r.objects_lost = ch.objects_lost;
  r.sla_during_repair = ch.sla_violations_during_repair;
  r.under_replicated_s = cloud.under_replicated_seconds();
  r.server_failures = cloud.churn()->stats().server_downs;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (args.has("help")) {
    std::puts(
        "bench_churn — SCDA vs random placement under server churn\n"
        "\n"
        "  --duration S         arrival window (default 30)\n"
        "  --drain S            extra drain time (default 15)\n"
        "  --arrival-rate R     flows/sec (default 30)\n"
        "  --mtbf S             mean server up-time (default 60)\n"
        "  --mttr S             mean server down-time (default 4)\n"
        "  --seed N             RNG seed (default 1)\n"
        "  --workers N          worker threads (default 2)\n");
    return 0;
  }

  try {
    BenchArgs a;
    a.duration_s = args.get_double("duration", a.duration_s);
    a.drain_s = args.get_double("drain", a.drain_s);
    a.arrival_rate = args.get_double("arrival-rate", a.arrival_rate);
    a.mtbf_s = args.get_double("mtbf", a.mtbf_s);
    a.mttr_s = args.get_double("mttr", a.mttr_s);
    a.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    std::vector<CellSpec> cells;
    for (const std::int32_t k : {1, 2, 3}) {
      cells.push_back({core::PlacementPolicy::kScda, k});
      cells.push_back({core::PlacementPolicy::kRandom, k});
    }

    const auto wall0 = std::chrono::steady_clock::now();
    runner::WorkerPool pool(
        static_cast<unsigned>(args.get_int("workers", 2)));
    const auto results = runner::parallel_map<CellResult>(
        pool, cells,
        [&a](const CellSpec& spec, std::size_t) { return run_cell(spec, a); });
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();

    std::uint64_t checksum = 0;
    for (const CellResult& r : results) {
      checksum = mix(checksum, r.flows_completed);
      checksum = mix(checksum, r.failovers);
      checksum = mix(checksum, r.aborted_flows);
      checksum = mix(checksum, r.repair_bytes);
      checksum = mix(checksum, r.objects_lost);
    }

    std::printf(
        "{\n"
        "  \"bench\": \"churn\",\n"
        "  \"duration_s\": %g,\n"
        "  \"drain_s\": %g,\n"
        "  \"arrival_rate\": %g,\n"
        "  \"server_mtbf_s\": %g,\n"
        "  \"server_mttr_s\": %g,\n"
        "  \"seed\": %llu,\n"
        "  \"cells\": [\n",
        a.duration_s, a.drain_s, a.arrival_rate, a.mtbf_s, a.mttr_s,
        static_cast<unsigned long long>(a.seed));
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellSpec& c = cells[i];
      const CellResult& r = results[i];
      std::printf(
          "    {\"placement\": \"%s\", \"replicas\": %d, "
          "\"flows_completed\": %llu, \"mean_fct_s\": %.6f, "
          "\"failed_reads\": %llu, \"failovers\": %llu, "
          "\"aborted_flows\": %llu, \"repair_flows\": %llu, "
          "\"repair_bytes\": %llu, \"objects_lost\": %llu, "
          "\"sla_violations_during_repair\": %llu, "
          "\"under_replicated_s\": %.3f, \"server_failures\": %llu}%s\n",
          c.placement == core::PlacementPolicy::kScda ? "scda" : "random",
          c.replicas, static_cast<unsigned long long>(r.flows_completed),
          r.mean_fct_s, static_cast<unsigned long long>(r.failed_reads),
          static_cast<unsigned long long>(r.failovers),
          static_cast<unsigned long long>(r.aborted_flows),
          static_cast<unsigned long long>(r.repair_flows),
          static_cast<unsigned long long>(r.repair_bytes),
          static_cast<unsigned long long>(r.objects_lost),
          static_cast<unsigned long long>(r.sla_during_repair),
          r.under_replicated_s,
          static_cast<unsigned long long>(r.server_failures),
          i + 1 < cells.size() ? "," : "");
    }
    std::printf(
        "  ],\n"
        "  \"checksum\": \"%016llx\",\n"
        "  \"toolchain\": \"%s\",\n"
        "  \"wall_s\": %.3f\n"
        "}\n",
        static_cast<unsigned long long>(checksum), kToolchain, wall_s);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_churn: %s\n", e.what());
    return 1;
  }
  return 0;
}
