// Ablation: realtime SLA-violation detection and mitigation (paper IV-A).
//
// Part 1 — detection latency: an overload (reservations exceeding a link's
// capacity) starts at t=2 s; the RM/RA detect it within ~one control
// interval tau. We report the detection lag for several tau values.
//
// Part 2 — mitigation: with the reserve-capacity boost enabled, violations
// stop after the boost switches backup capacity into the congested link.
#include <cstdio>
#include <vector>

#include "core/cloud.h"
#include "harness.h"
#include "util/units.h"

using namespace scda;

namespace {

core::CloudConfig base() {
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  return cfg;
}

/// t_overload: the reservations are issued at this time; detection should
/// follow within ~one control interval.
constexpr double kOverloadTime = 2.0;

struct DetectionResult {
  double first_violation = -1;
  std::size_t total_events = 0;
};

DetectionResult detection_latency(double tau) {
  sim::Simulator sim(3);
  auto cfg = base();
  cfg.params.tau = tau;
  core::Cloud cloud(sim, cfg);
  sim.post_at(scda::sim::secs(kOverloadTime), [&] {
    // Two 150 Mbps reservations through one client's 200 Mbps uplink.
    cloud.write(0, 1, util::megabytes(50),
                transport::ContentClass::kSemiInteractive, 1.0,
                util::mbps(150));
    cloud.write(0, 2, util::megabytes(50),
                transport::ContentClass::kSemiInteractive, 1.0,
                util::mbps(150));
  });
  sim.run_until(scda::sim::secs(10.0));
  DetectionResult r;
  r.total_events = cloud.sla().events().size();
  for (const auto& ev : cloud.sla().events()) {
    if (ev.time >= scda::sim::secs(kOverloadTime)) {
      r.first_violation = ev.time.seconds();
      break;
    }
  }
  return r;
}

struct MitigationResult {
  std::size_t violations = 0;
  std::uint64_t boosts = 0;
};

MitigationResult mitigation(bool boost) {
  sim::Simulator sim(4);
  auto cfg = base();
  core::Cloud cloud(sim, cfg);
  if (boost) cloud.sla().enable_capacity_boost(/*threshold=*/5, /*boost=*/2.0);
  cloud.write(0, 1, util::megabytes(60),
              transport::ContentClass::kSemiInteractive, 1.0,
              util::mbps(150));
  cloud.write(0, 2, util::megabytes(60),
              transport::ContentClass::kSemiInteractive, 1.0,
              util::mbps(150));
  sim.run_until(scda::sim::secs(60.0));
  return {cloud.sla().events().size(),
          cloud.sla().boosts_applied()};
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf(
      "==== ablation: SLA violation detection & mitigation (sec IV-A) ====\n");
  const std::vector<double> taus = {0.01, 0.025, 0.05, 0.1};
  runner::WorkerPool pool(bench::bench_workers());
  std::vector<DetectionResult> detect(taus.size());
  MitigationResult no_boost, with_boost;
  // Shard the four detection runs and the two mitigation runs together.
  pool.run(taus.size() + 2, [&](std::size_t j) {
    if (j < taus.size()) {
      detect[j] = detection_latency(taus[j]);
    } else if (j == taus.size()) {
      no_boost = mitigation(false);
    } else {
      with_boost = mitigation(true);
    }
  });

  std::printf("-- detection latency vs control interval --\n");
  for (std::size_t i = 0; i < taus.size(); ++i) {
    // The overload begins once the flows start (control latency ~0.105 s
    // after the writes are issued).
    std::printf("tau=%5.0f ms: first violation at t=%.3f s "
                "(overload issued at t=%.1f s), total events=%zu\n",
                taus[i] * 1e3, detect[i].first_violation, kOverloadTime,
                detect[i].total_events);
  }

  std::printf("\n-- reserve-capacity mitigation --\n");
  for (const bool boost : {false, true}) {
    const MitigationResult& m = boost ? with_boost : no_boost;
    std::printf("boost=%-3s violations=%4zu boosts=%llu\n",
                boost ? "on" : "off", m.violations,
                static_cast<unsigned long long>(m.boosts));
  }
  return 0;
}
