// Ablation: realtime SLA-violation detection and mitigation (paper IV-A).
//
// Part 1 — detection latency: an overload (reservations exceeding a link's
// capacity) starts at t=2 s; the RM/RA detect it within ~one control
// interval tau. We report the detection lag for several tau values.
//
// Part 2 — mitigation: with the reserve-capacity boost enabled, violations
// stop after the boost switches backup capacity into the congested link.
#include <cstdio>

#include "core/cloud.h"
#include "util/units.h"

using namespace scda;

namespace {

core::CloudConfig base() {
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  return cfg;
}

void detection_latency(double tau) {
  sim::Simulator sim(3);
  auto cfg = base();
  cfg.params.tau = tau;
  core::Cloud cloud(sim, cfg);
  const double t_overload = 2.0;
  sim.schedule_at(t_overload, [&] {
    // Two 150 Mbps reservations through one client's 200 Mbps uplink.
    cloud.write(0, 1, util::megabytes(50),
                transport::ContentClass::kSemiInteractive, 1.0,
                util::mbps(150));
    cloud.write(0, 2, util::megabytes(50),
                transport::ContentClass::kSemiInteractive, 1.0,
                util::mbps(150));
  });
  sim.run_until(10.0);
  double first = -1;
  for (const auto& ev : cloud.sla().events()) {
    if (ev.time >= t_overload) {
      first = ev.time;
      break;
    }
  }
  // The overload begins once the flows start (control latency ~0.105 s
  // after the writes are issued).
  std::printf("tau=%5.0f ms: first violation at t=%.3f s "
              "(overload issued at t=%.1f s), total events=%zu\n",
              tau * 1e3, first, t_overload, cloud.sla().events().size());
}

void mitigation(bool boost) {
  sim::Simulator sim(4);
  auto cfg = base();
  core::Cloud cloud(sim, cfg);
  if (boost) cloud.sla().enable_capacity_boost(/*threshold=*/5, /*boost=*/2.0);
  cloud.write(0, 1, util::megabytes(60),
              transport::ContentClass::kSemiInteractive, 1.0,
              util::mbps(150));
  cloud.write(0, 2, util::megabytes(60),
              transport::ContentClass::kSemiInteractive, 1.0,
              util::mbps(150));
  sim.run_until(60.0);
  std::printf("boost=%-3s violations=%4zu boosts=%llu\n",
              boost ? "on" : "off", cloud.sla().events().size(),
              static_cast<unsigned long long>(cloud.sla().boosts_applied()));
}

}  // namespace

int main() {
  std::printf("==== ablation: SLA violation detection & mitigation (sec IV-A) ====\n");
  std::printf("-- detection latency vs control interval --\n");
  for (const double tau : {0.01, 0.025, 0.05, 0.1}) detection_latency(tau);

  std::printf("\n-- reserve-capacity mitigation --\n");
  mitigation(false);
  mitigation(true);
  return 0;
}
