// Ablation: FES + multiple name nodes vs the single-NNS design of GFS/HDFS
// (paper sections I and III).
//
// Metadata request bursts of increasing size hit the name-node layer; we
// report the mean and max metadata-service delay for 1 vs 4 NNS. The FES
// hash-dispatch spreads the burst, so the multi-NNS design's queueing delay
// stays near the bare service time while the single NNS degrades linearly.
#include <cstdio>
#include <vector>

#include "core/cloud.h"
#include "harness.h"
#include "util/units.h"

using namespace scda;

namespace {

struct NnsResult {
  double mean_delay_ms = 0;
  double max_delay_ms = 0;
};

NnsResult run(std::int32_t n_nns, int burst) {
  sim::Simulator sim(11);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.params.n_name_nodes = n_nns;
  cfg.params.nns_service_time_s = 100e-6;  // 10k requests/s per NNS
  cfg.enable_replication = false;
  core::Cloud cloud(sim, cfg);

  // A synchronized burst of small writes: every request passes the
  // metadata layer before any data moves.
  for (int i = 0; i < burst; ++i)
    cloud.write(static_cast<std::size_t>(i % 16), i + 1,
                util::kilobytes(16));
  sim.run_until(scda::sim::secs(30.0));

  NnsResult r;
  double total = 0;
  std::uint64_t served = 0;
  for (std::size_t i = 0; i < cloud.fes().nns_count(); ++i) {
    const auto& nn = cloud.fes().node(i);
    total += nn.mean_delay() * static_cast<double>(nn.served());
    served += nn.served();
    r.max_delay_ms = std::max(r.max_delay_ms, nn.max_delay() * 1e3);
  }
  r.mean_delay_ms = served ? total / static_cast<double>(served) * 1e3 : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: single NNS bottleneck vs FES + multi-NNS "
              "(sec III) ====\n");
  std::printf("%-10s %-22s %-22s\n", "burst",
              "1 NNS mean/max (ms)", "4 NNS mean/max (ms)");
  const std::vector<int> bursts = {50, 200, 800, 3200};
  // One job per (burst, NNS count): even indices 1 NNS, odd 4 NNS.
  std::vector<NnsResult> one(bursts.size()), four(bursts.size());
  runner::WorkerPool pool(bench::bench_workers());
  pool.run(bursts.size() * 2, [&](std::size_t j) {
    const int burst = bursts[j / 2];
    if (j % 2 == 0) {
      one[j / 2] = run(1, burst);
    } else {
      four[j / 2] = run(4, burst);
    }
  });
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    std::printf("%-10d %8.2f / %-10.2f %8.2f / %-10.2f\n", bursts[i],
                one[i].mean_delay_ms, one[i].max_delay_ms,
                four[i].mean_delay_ms, four[i].max_delay_ms);
  }
  std::printf("# bare service time: 0.10 ms per request\n");
  return 0;
}
