// Ablation: control-interval (tau) sensitivity.
//
// The paper suggests tau ~ the average or maximum RTT. Too small and the
// control plane reacts to noise (and costs more messages); too large and
// new flows ride stale allocations (slower convergence, bigger transients).
// We sweep tau under the Pareto/Poisson workload and report FCT, SLA
// transients, fairness of live allocations, and control overhead.
#include <cstdio>

#include "harness.h"
#include "stats/fairness.h"
#include "util/units.h"

using namespace scda;

namespace {

struct TauResult {
  double mean_fct = 0;
  double p95_fct = 0;
  std::uint64_t sla = 0;
  std::uint64_t ctrl_msgs = 0;
};

TauResult run(double tau) {
  sim::Simulator sim(7);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.params.tau = tau;
  cfg.enable_replication = false;
  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);

  workload::DriverConfig dc;
  dc.end_time_s = 30.0;
  workload::ParetoPoissonConfig pc;
  pc.arrival_rate = 30.0;
  pc.cap_bytes = 20 * 1000 * 1000;
  workload::WorkloadDriver driver(
      cloud, std::make_unique<workload::ParetoPoissonWorkload>(pc), dc);
  driver.start();
  sim.run_until(scda::sim::secs(50.0));

  TauResult r;
  const stats::Summary s = col.summary();
  r.mean_fct = s.mean_fct_s;
  r.p95_fct = s.p95_fct_s;
  r.sla = cloud.allocator().sla_violations();
  r.ctrl_msgs = cloud.control_messages();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: control interval tau sensitivity ====\n");
  std::printf("%-10s %-10s %-10s %-12s %-12s\n", "tau_ms", "mean_fct",
              "p95_fct", "sla_events", "ctrl_msgs");
  const std::vector<double> taus = {0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.4};
  runner::WorkerPool pool(bench::bench_workers());
  const auto results = runner::parallel_map<TauResult>(
      pool, taus, [](double tau, std::size_t) { return run(tau); });
  for (std::size_t i = 0; i < taus.size(); ++i) {
    const TauResult& r = results[i];
    std::printf("%-10.0f %-10.3f %-10.3f %-12llu %-12llu\n", taus[i] * 1e3,
                r.mean_fct, r.p95_fct,
                static_cast<unsigned long long>(r.sla),
                static_cast<unsigned long long>(r.ctrl_msgs));
  }
  std::printf("# paper guidance: tau ~ mean RTT (intra-DC ~80 ms, WAN "
              "~200 ms here)\n");
  return 0;
}
