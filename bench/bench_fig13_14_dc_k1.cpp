// Figures 13-14: datacenter traces, bandwidth factor K = 1.
//
// AFCT vs content size (fig. 13) and FCT CDF (fig. 14) for SCDA vs RandTCP
// under mice/elephant datacenter traffic with equal-bandwidth agg<->core
// links. Expected shape: SCDA AFCT up to ~50% lower, with far smaller
// fluctuation across size bins; SCDA's CDF strictly left of RandTCP's.
//
// Replication: SCDA_BENCH_SEEDS=N reruns both arms over N derived seeds
// (sharded across SCDA_BENCH_WORKERS threads) and reports mean series with
// stddev/CI summaries; unset, the output matches the single-run harness.
#include "harness.h"
#include "util/units.h"

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  using namespace scda;
  bench::ExperimentConfig cfg;
  cfg.name = "datacenter traces K=1 (figs 13-14)";
  cfg.topology.base_bps = util::mbps(500);
  cfg.topology.k_factor = 1.0;
  cfg.topology.n_agg = 4;
  cfg.topology.tors_per_agg = 5;
  cfg.topology.servers_per_tor = 8;
  cfg.topology.n_clients = 64;
  cfg.driver.end_time_s = 100.0;
  cfg.driver.read_fraction = 0.3;
  cfg.sim_time_s = 120.0;
  cfg.make_generator = [] {
    workload::DatacenterWorkloadConfig w;
    w.arrival_rate = 60.0;
    return std::make_unique<workload::DatacenterWorkload>(w);
  };

  bench::FigureIds figs;
  figs.afct_fig = 13;
  figs.cdf_fig = 14;
  figs.afct_size_unit = 1e3;
  figs.afct_unit_name = "KB";

  bench::AfctBinning bins;
  bins.bin_bytes = 500e3;  // paper fig 13 x-axis runs to 7000 KB
  bins.max_bytes = 8e6;

  bench::run_comparison(cfg, figs, bins);
  return 0;
}
