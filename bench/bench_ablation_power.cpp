// Ablation: energy-aware server selection (paper sections VII-C and VII-D).
//
// Three configurations under the same passive-heavy workload:
//   (a) plain SCDA                      — no dormant policy, rate ranking
//   (b) + dormant policy (R_scale > 0)  — passive content parked on idle
//                                         servers which then scale down
//   (c) + power-aware ranking           — candidates ranked by rate/power
//
// Reported: total server energy, dormant-server count, and mean FCT (the
// energy savings must not destroy transfer times).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cloud.h"
#include "harness.h"
#include "stats/collector.h"
#include "util/units.h"
#include "workload/driver.h"
#include "workload/generators.h"

using namespace scda;

namespace {

struct PowerResult {
  double energy_kj = 0;
  std::size_t dormant = 0;
  double mean_fct = 0;
  std::uint64_t flows = 0;
  /// Mean power-inefficiency factor of the servers hosting blocks — the
  /// power-aware ranking should push content onto efficient machines.
  double host_inefficiency = 0;
};

PowerResult run(double rscale_bps, bool power_aware) {
  sim::Simulator sim(21);
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.params.rscale = sim::BitRate{rscale_bps};
  cfg.params.power_aware = power_aware;
  cfg.power_heterogeneity = 0.6;
  core::Cloud cloud(sim, cfg);
  stats::FlowStatsCollector col(cloud);

  // Passive-heavy mix: 70% passive archives, 30% active content.
  sim::Rng mix(77);
  core::ContentId id = 1;
  for (int burst = 0; burst < 10; ++burst) {
    const double t = burst * 5.0;
    sim.post_at(scda::sim::secs(t), [&cloud, &mix, id]() mutable {
      for (int i = 0; i < 6; ++i) {
        const bool passive = mix.bernoulli(0.7);
        cloud.write(static_cast<std::size_t>(mix.uniform_int(0, 15)),
                    id + i, util::kilobytes(800),
                    passive ? transport::ContentClass::kPassive
                            : transport::ContentClass::kSemiInteractive);
      }
    });
    id += 6;
  }
  sim.run_until(scda::sim::secs(120.0));

  PowerResult r;
  r.energy_kj = cloud.total_energy_j() / 1e3;
  r.dormant = cloud.dormant_servers();
  r.mean_fct = col.summary().mean_fct_s;
  r.flows = col.summary().flows;
  double ineff_sum = 0;
  std::size_t hosted = 0;
  for (const auto& bs : cloud.servers()) {
    if (bs.block_count() == 0) continue;
    ineff_sum += bs.power().inefficiency() *
                 static_cast<double>(bs.block_count());
    hosted += bs.block_count();
  }
  r.host_inefficiency = hosted ? ineff_sum / static_cast<double>(hosted) : 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: dormant servers & power-aware selection "
              "(sec VII-C/D) ====\n");
  std::printf("%-26s %-11s %-8s %-9s %-7s %-10s\n", "configuration",
              "energy_kJ", "dormant", "mean_fct", "flows", "host_ineff");
  const auto row = [](const char* name, const PowerResult& r) {
    std::printf("%-26s %-11.1f %-8zu %-9.3f %-7llu %-10.3f\n", name,
                r.energy_kj, r.dormant, r.mean_fct,
                static_cast<unsigned long long>(r.flows),
                r.host_inefficiency);
  };
  const std::vector<std::pair<double, bool>> configs = {
      {0.0, false},
      {util::mbps(150).bps(), false},
      {0.0, true},
      {util::mbps(150).bps(), true},
  };
  runner::WorkerPool pool(bench::bench_workers());
  const auto results = runner::parallel_map<PowerResult>(
      pool, configs, [](const std::pair<double, bool>& c, std::size_t) {
        return run(c.first, c.second);
      });
  const PowerResult& plain = results[0];
  const PowerResult& dormant = results[1];
  const PowerResult& aware = results[2];
  const PowerResult& both = results[3];
  row("plain SCDA", plain);
  row("dormant policy", dormant);
  row("power-aware ranking", aware);
  row("dormant + power-aware", both);
  std::printf("# energy saved by dormant policy: %.1f%%\n",
              100.0 * (plain.energy_kj - dormant.energy_kj) /
                  plain.energy_kj);
  std::printf("# power-aware ranking lowers the mean inefficiency of the "
              "servers hosting content (%.3f -> %.3f; population mean 1.3)\n",
              plain.host_inefficiency, aware.host_inefficiency);
  return 0;
}
