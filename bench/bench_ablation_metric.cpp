// Ablation: exact rate metric (eqs. 2-4) vs simplified metric (eq. 5).
//
// The exact metric aggregates per-flow rate sums through the RM/RA tree;
// the simplified one only reads the switch byte counter L(t) and is
// stateless. Under the same Pareto/Poisson workload we compare FCT,
// throughput and SLA-violation counts — the paper argues the simplified
// variant trades a little precision for zero reporting overhead.
#include "harness.h"
#include "util/units.h"

using namespace scda;

namespace {

bench::RunResult run(core::RateMetricKind kind) {
  bench::ExperimentConfig cfg;
  cfg.name = "metric ablation";
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 16;
  cfg.topology.base_bps = util::mbps(200);
  cfg.params.metric = kind;
  cfg.driver.end_time_s = 40.0;
  cfg.sim_time_s = 60.0;
  cfg.make_generator = [] {
    workload::ParetoPoissonConfig w;
    w.arrival_rate = 40.0;
    w.cap_bytes = 20 * 1000 * 1000;
    return std::make_unique<workload::ParetoPoissonWorkload>(w);
  };
  bench::AfctBinning bins;
  return bench::run_once(cfg, core::PlacementPolicy::kScda,
                         transport::TransportKind::kScda, bins);
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: exact (eqs 2-4) vs simplified (eq 5) rate "
              "metric ====\n");
  const std::vector<core::RateMetricKind> kinds = {
      core::RateMetricKind::kExact, core::RateMetricKind::kSimplified};
  runner::WorkerPool pool(bench::bench_workers());
  const auto results = runner::parallel_map<bench::RunResult>(
      pool, kinds,
      [](core::RateMetricKind k, std::size_t) { return run(k); });
  const bench::RunResult& exact = results[0];
  const bench::RunResult& simple = results[1];
  stats::emit_summary(stdout, "exact     ", exact.summary);
  stats::emit_summary(stdout, "simplified", simple.summary);
  std::printf("# mean inst thpt: exact %.1f KB/s, simplified %.1f KB/s\n",
              exact.mean_throughput_kbs, simple.mean_throughput_kbs);
  std::printf("# SLA violations: exact %llu, simplified %llu\n",
              static_cast<unsigned long long>(exact.sla_violations),
              static_cast<unsigned long long>(simple.sla_violations));
  std::printf("# simplified-vs-exact mean FCT ratio: %.2f\n",
              exact.summary.mean_fct_s > 0
                  ? simple.summary.mean_fct_s / exact.summary.mean_fct_s
                  : 0.0);
  return 0;
}
