// Ablation: SCDA on general (multipath) topologies — paper sections IX/XI.
//
// Three routing policies for simultaneous cross-fabric transfers:
//   single   — deterministic shortest path (every flow picks the same
//              spine/core: the degenerate case the paper's related work
//              warns about)
//   ecmp     — per-flow hash over the equal-cost paths (VL2 / Hedera)
//   widest   — SCDA's max/min path selection over the *prospective* link
//              rates gamma/(N-hat + 1) (section IX)
//
// Run on a 4-spine leaf-spine fabric and a k=4 fat-tree. ECMP spreads on
// average but collides (birthday paradox: 8 flows on 4 paths); widest-path
// places deliberately and avoids collisions entirely.
#include <cstdio>
#include <vector>

#include "core/path_selector.h"
#include "harness.h"
#include "core/rate_allocator.h"
#include "net/fat_tree.h"
#include "net/general_topology.h"
#include "sim/simulator.h"
#include "transport/transport_manager.h"
#include "util/units.h"

using namespace scda;

namespace {

enum class Routing { kSingle, kEcmp, kWidest };

const char* name(Routing r) {
  switch (r) {
    case Routing::kSingle: return "shortest-path";
    case Routing::kEcmp: return "ECMP hash";
    case Routing::kWidest: return "widest-path (SCDA)";
  }
  return "?";
}

struct Result {
  double mean_fct = 0;
  double max_fct = 0;
};

/// Run `pairs` simultaneous 20 MB transfers with the chosen routing.
Result run(net::Network& net, const std::vector<std::pair<net::NodeId,
                                                          net::NodeId>>& pairs,
           Routing routing, sim::Simulator& sim) {
  core::ScdaParams params;
  core::RateAllocator alloc(net, params);
  transport::TransportManager tm(net);

  std::vector<double> fcts;
  tm.set_completion_callback([&](const transport::FlowRecord& r) {
    fcts.push_back(r.fct());
    alloc.unregister_flow(r.id);
  });

  sim::PeriodicProcess control(sim, sim::secs(params.tau), [&] {
    alloc.tick();
    for (const auto& rec : tm.records()) {
      if (rec->finished()) continue;
      if (auto* s = dynamic_cast<transport::ScdaSender*>(tm.sender(rec->id)))
        s->set_rate(alloc.flow_rate(rec->id));
    }
  });
  control.start(sim::secs(params.tau));

  for (const auto& [a, b] : pairs) {
    const net::FlowId id = tm.next_flow_id();
    std::vector<net::LinkId> path;
    switch (routing) {
      case Routing::kSingle:
        path = net.path(a, b);
        break;
      case Routing::kEcmp:
        path = net::ecmp_path(net, a, b, id);
        break;
      case Routing::kWidest:
        path = core::widest_path(net, a, b, [&](net::LinkId l) {
                 return alloc.prospective_link_rate(l);
               }).path;
        break;
    }
    net.pin_flow_route(id, path);
    alloc.register_flow_on_path(id, path);
    tm.start_scda_flow(a, b, util::megabytes(20), alloc.flow_rate(id),
                       alloc.flow_rate(id));
  }
  sim.run_until(sim.now() + scda::sim::secs(120.0));
  control.stop();

  Result r;
  for (const double f : fcts) {
    r.mean_fct += f;
    r.max_fct = std::max(r.max_fct, f);
  }
  if (!fcts.empty()) r.mean_fct /= static_cast<double>(fcts.size());
  return r;
}

Result run_leaf_spine(Routing r) {
  sim::Simulator sim(13);
  net::LeafSpineConfig cfg;
  cfg.n_spines = 4;
  cfg.n_leaves = 4;
  cfg.servers_per_leaf = 4;
  cfg.n_clients = 4;
  cfg.server_bps = util::mbps(500);
  cfg.fabric_bps = util::mbps(500);
  net::LeafSpine ls(sim, cfg);
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  for (int i = 0; i < 8; ++i) {
    const std::size_t src = static_cast<std::size_t>(i * 2 % 16);
    pairs.emplace_back(ls.servers()[src], ls.servers()[(src + 8) % 16]);
  }
  return run(ls.net(), pairs, r, sim);
}

Result run_fat_tree(Routing r) {
  sim::Simulator sim(17);
  net::FatTreeConfig cfg;
  cfg.k = 4;
  cfg.n_clients = 4;
  cfg.link_bps = util::mbps(500);
  net::FatTree ft(sim, cfg);
  std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
  for (int i = 0; i < 8; ++i) {
    const std::size_t src = static_cast<std::size_t>(i * 2 % 16);
    pairs.emplace_back(ft.servers()[src], ft.servers()[(src + 8) % 16]);
  }
  return run(ft.net(), pairs, r, sim);
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: multipath routing on general topologies "
              "(sec IX/XI) ====\n");
  const std::vector<Routing> routings = {Routing::kSingle, Routing::kEcmp,
                                         Routing::kWidest};
  // One job per (fabric, routing) pair: leaf-spine first, fat-tree after.
  std::vector<Result> ls(routings.size()), ft(routings.size());
  runner::WorkerPool pool(bench::bench_workers());
  pool.run(routings.size() * 2, [&](std::size_t j) {
    if (j < routings.size()) {
      ls[j] = run_leaf_spine(routings[j]);
    } else {
      ft[j - routings.size()] = run_fat_tree(routings[j - routings.size()]);
    }
  });

  std::printf("-- leaf-spine, 4 spines, 8 cross-leaf 20 MB transfers --\n");
  for (std::size_t i = 0; i < routings.size(); ++i)
    std::printf("%-20s mean_fct=%.2fs max_fct=%.2fs\n", name(routings[i]),
                ls[i].mean_fct, ls[i].max_fct);

  std::printf("\n-- k=4 fat-tree, 8 cross-pod 20 MB transfers --\n");
  for (std::size_t i = 0; i < routings.size(); ++i)
    std::printf("%-20s mean_fct=%.2fs max_fct=%.2fs\n", name(routings[i]),
                ft[i].mean_fct, ft[i].max_fct);
  std::printf("\n# widest-path uses the prospective rate gamma/(N-hat+1) as "
              "the link weight,\n# so concurrent placements avoid each "
              "other; ECMP collides by chance.\n");
  return 0;
}
