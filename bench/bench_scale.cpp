// bench_scale — the fluid-engine scale benchmark behind BENCH_scale.json.
//
// Builds a k-ary fat-tree (default k=32: 8192 servers) with the dense
// routing tables OFF (analytic FatTree::server_path), drives Poisson
// server-to-server elephants through the RateAllocator + FluidEngine pair,
// and reports completed flows, events and wall-clock as one JSON object on
// stdout. No TransportManager, no per-flow heap records: the bench issues
// monotonic flow ids itself, so the steady-state cost per flow is two
// events (arrival, completion) plus its share of the per-epoch re-rates.
//
// All fields except wall_s / events_per_s / flows_per_s are a pure
// function of the arguments and seed; `checksum` folds every completion
// (id, time) pair, so two runs agreeing on it replayed the same history.
//
//   bench_scale                          # the committed k=32 configuration
//   bench_scale --k 4 --duration 5 --arrival-rate 200   # CI smoke
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/rate_allocator.h"
#include "net/fat_tree.h"
#include "sim/simulator.h"
#include "transport/fluid.h"
#include "util/args.h"
#include "workload/generators.h"

using namespace scda;

namespace {

#ifdef NDEBUG
constexpr const char* kToolchain = "optimized";
#else
constexpr const char* kToolchain = "debug";
#endif

/// splitmix64 fold for the determinism checksum.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv);
  if (args.has("help")) {
    std::puts(
        "bench_scale — fluid-engine fat-tree scale benchmark\n"
        "\n"
        "  --k N                pod arity (default 32 -> 8192 servers)\n"
        "  --arrival-rate R     aggregate flows/sec (default 10000)\n"
        "  --duration S         arrival window (default 105)\n"
        "  --drain S            extra drain time (default 60)\n"
        "  --tau S              RA control interval (default 0.05)\n"
        "  --seed N             RNG seed (default 1)\n");
    return 0;
  }

  try {
    const auto k = static_cast<std::int32_t>(args.get_int("k", 32));
    const double arrival_rate = args.get_double("arrival-rate", 10000.0);
    const double duration_s = args.get_double("duration", 105.0);
    const double drain_s = args.get_double("drain", 60.0);
    const double tau = args.get_double("tau", 0.05);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    const auto wall0 = std::chrono::steady_clock::now();

    sim::Simulator sim(seed);
    net::FatTreeConfig tc;
    tc.k = k;
    tc.n_clients = 0;
    tc.build_routes = false;  // analytic server_path; no O(N^2) tables
    net::FatTree ft(sim, tc);

    core::ScdaParams params;
    params.tau = tau;
    core::RateAllocator alloc(ft.net(), params);
    transport::FluidEngine fluid(ft.net());

    const auto n_servers = ft.servers().size();
    workload::ScaleWorkloadConfig wc;
    wc.arrival_rate = arrival_rate;
    workload::ScaleWorkload gen(wc);

    // Per-flow start times and sizes, indexed by monotonic flow id.
    std::vector<std::int64_t> start_ns;
    std::vector<std::int64_t> size_bytes;
    std::uint64_t started = 0, completed = 0;
    std::int64_t bytes_completed = 0;
    double fct_sum_s = 0;
    std::size_t peak_active = 0;
    std::uint64_t checksum = 0;

    fluid.set_completion_callback([&](net::FlowId id) {
      alloc.unregister_flow(id);
      ++completed;
      const std::int64_t now_ns = sim.now().nanos();
      fct_sum_s += static_cast<double>(now_ns - start_ns[id.index()]) * 1e-9;
      bytes_completed += size_bytes[id.index()];
      checksum = mix(checksum, static_cast<std::uint64_t>(id.value()));
      checksum = mix(checksum, static_cast<std::uint64_t>(now_ns));
    });

    alloc.set_epoch_callback([&] {
      fluid.rerate_all(
          [&](net::FlowId id) { return alloc.flow_rate(id); },
          /*epoch=*/true);
      peak_active = std::max(peak_active, fluid.active_flows());
    });
    sim::PeriodicProcess control(sim, sim::secs(tau), [&] { alloc.tick(); });
    control.start(sim::secs(tau));

    // Self-scheduling Poisson arrivals between distinct random servers.
    const sim::Time arrival_end = sim::secs(duration_s);
    std::function<void()> arrive = [&] {
      const auto src = static_cast<std::size_t>(sim.rng().uniform_int(
          0, static_cast<std::int64_t>(n_servers) - 1));
      auto dst = static_cast<std::size_t>(sim.rng().uniform_int(
          0, static_cast<std::int64_t>(n_servers) - 2));
      if (dst >= src) ++dst;  // uniform over servers != src

      const workload::FlowRequest req = gen.next(sim.rng());
      const net::FlowId id = net::FlowId::from_index(start_ns.size());
      const std::vector<net::LinkId> path = ft.server_path(src, dst, id);
      alloc.register_flow_on_path(id, path);
      start_ns.push_back(sim.now().nanos());
      size_bytes.push_back(req.size_bytes);
      ++started;
      // Seed from what the path currently offers; the next epoch (<= tau
      // away) settles the flow onto its fair allocation.
      fluid.start(id, req.size_bytes, alloc.path_rate(path), path);

      const sim::Time next = sim.now() + sim::secs(req.inter_arrival_s);
      if (next < arrival_end) sim.post_at(next, arrive);
    };
    sim.post_at(sim::Time{}, arrive);

    const std::uint64_t events = sim.run_until(sim::secs(duration_s + drain_s));
    control.stop();

    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();

    std::printf(
        "{\n"
        "  \"bench\": \"scale\",\n"
        "  \"k\": %d,\n"
        "  \"servers\": %zu,\n"
        "  \"links\": %zu,\n"
        "  \"route_table_entries\": %zu,\n"
        "  \"tau_s\": %g,\n"
        "  \"arrival_rate\": %g,\n"
        "  \"duration_s\": %g,\n"
        "  \"drain_s\": %g,\n"
        "  \"seed\": %llu,\n"
        "  \"flows_started\": %llu,\n"
        "  \"flows_completed\": %llu,\n"
        "  \"bytes_completed\": %lld,\n"
        "  \"afct_s\": %.6f,\n"
        "  \"peak_active_flows\": %zu,\n"
        "  \"fluid_epochs\": %llu,\n"
        "  \"fluid_rerates\": %llu,\n"
        "  \"events\": %llu,\n"
        "  \"checksum\": \"%016llx\",\n"
        "  \"toolchain\": \"%s\",\n"
        "  \"wall_s\": %.3f,\n"
        "  \"events_per_s\": %.0f,\n"
        "  \"flows_per_s\": %.0f\n"
        "}\n",
        k, n_servers, ft.net().link_count(),
        ft.net().route_table_entries(), tau, arrival_rate, duration_s,
        drain_s, static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(started),
        static_cast<unsigned long long>(completed),
        static_cast<long long>(bytes_completed),
        completed ? fct_sum_s / static_cast<double>(completed) : 0.0,
        peak_active, static_cast<unsigned long long>(fluid.stats().epochs),
        static_cast<unsigned long long>(fluid.stats().rerates),
        static_cast<unsigned long long>(events),
        static_cast<unsigned long long>(checksum), kToolchain, wall_s,
        wall_s > 0 ? static_cast<double>(events) / wall_s : 0.0,
        wall_s > 0 ? static_cast<double>(completed) / wall_s : 0.0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_scale: %s\n", e.what());
    return 1;
  }
  return 0;
}
