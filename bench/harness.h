// Shared experiment harness for the figure-reproduction benchmarks.
//
// Each bench binary configures a workload + topology, then runs the same
// experiment twice — once with SCDA (rate-metric placement + allocated-rate
// transport) and once with RandTCP (random placement + TCP NewReno, the
// VL2/Hedera-style baseline) — and prints the series the paper's figures
// plot, plus the headline SCDA-vs-RandTCP comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "core/cloud.h"
#include "stats/collector.h"
#include "stats/emit.h"
#include "stats/perf.h"
#include "stats/throughput.h"
#include "workload/driver.h"
#include "workload/generators.h"

namespace scda::bench {

struct ExperimentConfig {
  std::string name;
  net::TopologyConfig topology;
  core::ScdaParams params;
  workload::DriverConfig driver;
  std::function<std::unique_ptr<workload::Generator>()> make_generator;
  /// Simulated span: arrivals stop at driver.end_time_s; the run continues
  /// to drain in-flight transfers until this time.
  double sim_time_s = 120.0;
  double throughput_interval_s = 1.0;
  std::uint64_t seed = 0x5cda2013ULL;
  /// The paper's figures measure client-visible transfers; internal
  /// replication traffic is left off by default in the figure benches and
  /// exercised by the ablation benches instead.
  bool enable_replication = false;
};

/// Set SCDA_BENCH_QUICK=1 to run every experiment at 1/5 duration — handy
/// while iterating; the emitted series are proportionally shorter.
inline bool quick_mode() {
  const char* v = std::getenv("SCDA_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

struct RunResult {
  stats::Summary summary;
  std::vector<stats::ThroughputSample> throughput;
  std::vector<stats::CdfPoint> fct_cdf;
  std::vector<stats::AfctBin> afct;
  double mean_throughput_kbs = 0;
  std::uint64_t sla_violations = 0;
  std::uint64_t failed_reads = 0;
  double energy_j = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t events = 0;
  stats::CorePerf perf;  ///< event-engine/link counters (docs/perf.md)
};

struct AfctBinning {
  double bin_bytes = 1e6;   ///< paper figs 9/12 bin by MB; 13/15 by ~KB
  double max_bytes = 90e6;
};

inline RunResult run_once(const ExperimentConfig& cfg_in,
                          core::PlacementPolicy placement,
                          transport::TransportKind transport,
                          const AfctBinning& binning) {
  ExperimentConfig cfg = cfg_in;
  if (quick_mode()) {
    cfg.driver.end_time_s /= 5.0;
    cfg.sim_time_s = cfg.driver.end_time_s + 15.0;
  }
  sim::Simulator sim(cfg.seed);

  core::CloudConfig cc;
  cc.topology = cfg.topology;
  cc.params = cfg.params;
  cc.placement = placement;
  cc.transport = transport;
  cc.enable_replication = cfg.enable_replication;

  core::Cloud cloud(sim, cc);
  stats::FlowStatsCollector collector(cloud);
  stats::ThroughputSampler thpt(sim, cloud.transports(),
                                cfg.throughput_interval_s);

  workload::WorkloadDriver driver(cloud, cfg.make_generator(), cfg.driver);
  driver.start();

  RunResult r;
  r.events = sim.run_until(cfg.sim_time_s);
  thpt.stop();

  r.summary = collector.summary();
  r.throughput = thpt.series();
  r.fct_cdf = collector.fct_cdf();
  r.afct = collector.afct_by_size(binning.bin_bytes, binning.max_bytes);
  // Mean instantaneous throughput over the arrival window (the paper's
  // figures span the 100 s of arrivals); the drain tail would otherwise
  // penalize the system that finishes its backlog *earlier*.
  {
    double sum = 0;
    std::size_t n = 0;
    for (const auto& s : r.throughput) {
      if (s.time_s <= cfg.driver.end_time_s) {
        sum += s.kbytes_per_s;
        ++n;
      }
    }
    r.mean_throughput_kbs = n ? sum / static_cast<double>(n) : 0.0;
  }
  r.sla_violations = cloud.allocator().sla_violations();
  r.failed_reads = cloud.failed_reads();
  r.energy_j = cloud.total_energy_j();
  r.flows_completed = collector.count();
  r.perf = stats::collect_core_perf(sim, cloud.topology().net());
  return r;
}

struct FigureIds {
  /// Figure numbers from the paper; -1 skips that series.
  int throughput_fig = -1;
  int cdf_fig = -1;
  int afct_fig = -1;
  double afct_size_unit = 1e6;
  const char* afct_unit_name = "MB";
};

/// Run both systems and print every series of the experiment.
inline void run_comparison(const ExperimentConfig& cfg, const FigureIds& figs,
                           const AfctBinning& binning) {
  std::printf("==== %s ====\n", cfg.name.c_str());

  const RunResult scda_r =
      run_once(cfg, core::PlacementPolicy::kScda,
               transport::TransportKind::kScda, binning);
  const RunResult rand_r =
      run_once(cfg, core::PlacementPolicy::kRandom,
               transport::TransportKind::kTcp, binning);

  const auto label = [&](const char* base, const char* sys) {
    return cfg.name + " " + base + " (" + sys + ")";
  };

  if (figs.throughput_fig > 0) {
    std::printf("\n-- Figure %d: instantaneous average throughput --\n",
                figs.throughput_fig);
    stats::emit_throughput(stdout, label("inst thpt", "SCDA"),
                           scda_r.throughput);
    stats::emit_throughput(stdout, label("inst thpt", "RandTCP"),
                           rand_r.throughput);
  }
  if (figs.cdf_fig > 0) {
    std::printf("\n-- Figure %d: FCT CDF --\n", figs.cdf_fig);
    stats::emit_cdf(stdout, label("FCT CDF", "SCDA"), scda_r.fct_cdf);
    stats::emit_cdf(stdout, label("FCT CDF", "RandTCP"), rand_r.fct_cdf);
  }
  if (figs.afct_fig > 0) {
    std::printf("\n-- Figure %d: AFCT vs content size --\n", figs.afct_fig);
    stats::emit_afct(stdout, label("AFCT", "SCDA"), scda_r.afct,
                     figs.afct_size_unit, figs.afct_unit_name);
    stats::emit_afct(stdout, label("AFCT", "RandTCP"), rand_r.afct,
                     figs.afct_size_unit, figs.afct_unit_name);
  }

  std::printf("\n-- summary --\n");
  stats::emit_summary(stdout, "SCDA   ", scda_r.summary);
  stats::emit_summary(stdout, "RandTCP", rand_r.summary);
  std::printf("# SCDA mean inst thpt: %.1f KB/s, RandTCP: %.1f KB/s "
              "(over the arrival window)\n",
              scda_r.mean_throughput_kbs, rand_r.mean_throughput_kbs);
  if (rand_r.summary.goodput_bps > 0) {
    std::printf("# goodput: SCDA %.1f Mbps vs RandTCP %.1f Mbps "
                "(%.1f%% higher)\n",
                scda_r.summary.goodput_bps / 1e6,
                rand_r.summary.goodput_bps / 1e6,
                100.0 * (scda_r.summary.goodput_bps -
                         rand_r.summary.goodput_bps) /
                    rand_r.summary.goodput_bps);
  }
  stats::emit_comparison(stdout, scda_r.summary, rand_r.summary,
                         scda_r.mean_throughput_kbs,
                         rand_r.mean_throughput_kbs);
  std::printf("# flows: SCDA=%llu RandTCP=%llu; SLA violations (SCDA): %llu; "
              "events: %llu/%llu\n",
              static_cast<unsigned long long>(scda_r.flows_completed),
              static_cast<unsigned long long>(rand_r.flows_completed),
              static_cast<unsigned long long>(scda_r.sla_violations),
              static_cast<unsigned long long>(scda_r.events),
              static_cast<unsigned long long>(rand_r.events));
  stats::emit_core_perf(stdout, scda_r.perf);
  stats::emit_core_perf(stdout, rand_r.perf);
  std::printf("\n");
}

}  // namespace scda::bench
