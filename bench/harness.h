// Shared experiment harness for the figure-reproduction benchmarks.
//
// Each bench binary configures a workload + topology, then runs the same
// experiment twice — once with SCDA (rate-metric placement + allocated-rate
// transport) and once with RandTCP (random placement + TCP NewReno, the
// VL2/Hedera-style baseline) — and prints the series the paper's figures
// plot, plus the headline SCDA-vs-RandTCP comparison.
//
// Execution goes through the sweep runner (src/runner): set
// SCDA_BENCH_SEEDS=N to replicate every arm over N deterministically
// derived seeds and print mean series with stddev/CI summaries, and
// SCDA_BENCH_WORKERS=M to shard the runs over M threads (default: all
// cores). Output is a pure function of the spec — worker count and
// completion order never change a byte. With SCDA_BENCH_SEEDS unset (one
// seed) the output is byte-identical to the historical sequential harness.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runner/experiment.h"
#include "runner/sweep.h"
#include "runner/worker_pool.h"
#include "stats/aggregate.h"
#include "stats/emit.h"
#include "stats/metrics_collect.h"

namespace scda::bench {

using ExperimentConfig = runner::ExperimentConfig;
using RunResult = stats::RunResult;
using AfctBinning = runner::AfctBinning;

/// Flight-recorder trace path requested on the command line (--trace=FILE);
/// empty when tracing is off. Storage shared by init_cli/run_comparison.
inline std::string& trace_path() {
  static std::string path;
  return path;
}

/// Parse the common bench CLI. Every figure bench calls this first thing in
/// main(): `--trace=FILE` (or `--trace FILE`) records a Chrome trace-event
/// JSON of the first SCDA run (seed 0) to FILE; unknown arguments abort
/// with usage so typos do not silently run the default experiment.
inline void init_cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--trace=", 8) == 0) {
      trace_path() = a + 8;
    } else if (std::strcmp(a, "--trace") == 0 && i + 1 < argc) {
      trace_path() = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace=FILE]\n", argv[0]);
      std::exit(2);
    }
  }
}

/// Set SCDA_BENCH_QUICK=1 to run every experiment at 1/5 duration — handy
/// while iterating; the emitted series are proportionally shorter.
inline bool quick_mode() {
  const char* v = std::getenv("SCDA_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

/// Replications per arm (SCDA_BENCH_SEEDS, default 1).
inline std::uint64_t bench_seeds() {
  if (const char* v = std::getenv("SCDA_BENCH_SEEDS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<std::uint64_t>(n);
  }
  return 1;
}

/// Worker threads for the sweep (SCDA_BENCH_WORKERS, default SCDA_WORKERS
/// or all cores).
inline unsigned bench_workers() {
  if (const char* v = std::getenv("SCDA_BENCH_WORKERS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  return runner::default_workers();
}

/// Set SCDA_BENCH_FLUID=1 to run the SCDA arms in hybrid fluid/packet mode
/// (docs/fluid_engine.md); SCDA_BENCH_FLUID_THRESHOLD overrides the
/// elephant byte threshold.
inline transport::FluidConfig bench_fluid() {
  transport::FluidConfig f;
  const char* v = std::getenv("SCDA_BENCH_FLUID");
  f.enabled = v != nullptr && v[0] == '1';
  if (const char* t = std::getenv("SCDA_BENCH_FLUID_THRESHOLD")) {
    const long long n = std::strtoll(t, nullptr, 10);
    if (n > 0) f.threshold_bytes = n;
  }
  return f;
}

inline ExperimentConfig quick_scaled(const ExperimentConfig& cfg_in) {
  ExperimentConfig cfg = cfg_in;
  if (quick_mode()) {
    cfg.driver.end_time_s /= 5.0;
    cfg.sim_time_s = cfg.driver.end_time_s + 15.0;
  }
  return cfg;
}

inline RunResult run_once(const ExperimentConfig& cfg_in,
                          core::PlacementPolicy placement,
                          transport::TransportKind transport,
                          const AfctBinning& binning) {
  return runner::run_once(quick_scaled(cfg_in), placement, transport, binning);
}

struct FigureIds {
  /// Figure numbers from the paper; -1 skips that series.
  int throughput_fig = -1;
  int cdf_fig = -1;
  int afct_fig = -1;
  double afct_size_unit = 1e6;
  const char* afct_unit_name = "MB";
};

namespace detail {

/// The historical single-seed report: per-run series, summaries, headline
/// comparison, core-perf counters. Byte-identical to the pre-runner
/// harness.
inline void print_single(const ExperimentConfig& cfg, const FigureIds& figs,
                         const RunResult& scda_r, const RunResult& rand_r) {
  const auto label = [&](const char* base, const char* sys) {
    return cfg.name + " " + base + " (" + sys + ")";
  };

  if (figs.throughput_fig > 0) {
    std::printf("\n-- Figure %d: instantaneous average throughput --\n",
                figs.throughput_fig);
    stats::emit_throughput(stdout, label("inst thpt", "SCDA"),
                           scda_r.throughput);
    stats::emit_throughput(stdout, label("inst thpt", "RandTCP"),
                           rand_r.throughput);
  }
  if (figs.cdf_fig > 0) {
    std::printf("\n-- Figure %d: FCT CDF --\n", figs.cdf_fig);
    stats::emit_cdf(stdout, label("FCT CDF", "SCDA"), scda_r.fct_cdf);
    stats::emit_cdf(stdout, label("FCT CDF", "RandTCP"), rand_r.fct_cdf);
  }
  if (figs.afct_fig > 0) {
    std::printf("\n-- Figure %d: AFCT vs content size --\n", figs.afct_fig);
    stats::emit_afct(stdout, label("AFCT", "SCDA"), scda_r.afct,
                     figs.afct_size_unit, figs.afct_unit_name);
    stats::emit_afct(stdout, label("AFCT", "RandTCP"), rand_r.afct,
                     figs.afct_size_unit, figs.afct_unit_name);
  }

  std::printf("\n-- summary --\n");
  stats::emit_summary(stdout, "SCDA   ", scda_r.summary);
  stats::emit_summary(stdout, "RandTCP", rand_r.summary);
  std::printf("# SCDA mean inst thpt: %.1f KB/s, RandTCP: %.1f KB/s "
              "(over the arrival window)\n",
              scda_r.mean_throughput_kbs, rand_r.mean_throughput_kbs);
  if (rand_r.summary.goodput_bps > 0) {
    std::printf("# goodput: SCDA %.1f Mbps vs RandTCP %.1f Mbps "
                "(%.1f%% higher)\n",
                scda_r.summary.goodput_bps / 1e6,
                rand_r.summary.goodput_bps / 1e6,
                100.0 * (scda_r.summary.goodput_bps -
                         rand_r.summary.goodput_bps) /
                    rand_r.summary.goodput_bps);
  }
  stats::emit_comparison(stdout, scda_r.summary, rand_r.summary,
                         scda_r.mean_throughput_kbs,
                         rand_r.mean_throughput_kbs);
  std::printf("# flows: SCDA=%llu RandTCP=%llu; SLA violations (SCDA): %llu; "
              "events: %llu/%llu\n",
              static_cast<unsigned long long>(scda_r.flows_completed),
              static_cast<unsigned long long>(rand_r.flows_completed),
              static_cast<unsigned long long>(scda_r.sla_violations),
              static_cast<unsigned long long>(scda_r.events),
              static_cast<unsigned long long>(rand_r.events));
  stats::emit_core_perf(stdout, scda_r.perf);
  stats::emit_core_perf(stdout, rand_r.perf);
  stats::emit_metrics(stdout, scda_r.metrics);
  stats::emit_metrics(stdout, rand_r.metrics);
  std::printf("\n");
}

/// The replicated report: mean series per arm, mean ± stddev [CI95]
/// scalar summaries, headline comparison of the means.
inline void print_replicated(const ExperimentConfig& cfg,
                             const FigureIds& figs,
                             const runner::ArmSummary& scda_s,
                             const runner::ArmSummary& rand_s) {
  const auto label = [&](const char* base, const char* sys) {
    return cfg.name + " " + base + " (" + sys + ", mean of " +
           std::to_string(scda_s.agg.runs) + ")";
  };

  if (figs.throughput_fig > 0) {
    std::printf("\n-- Figure %d: instantaneous average throughput --\n",
                figs.throughput_fig);
    stats::emit_throughput(stdout, label("inst thpt", "SCDA"),
                           scda_s.agg.throughput);
    stats::emit_throughput(stdout, label("inst thpt", "RandTCP"),
                           rand_s.agg.throughput);
  }
  if (figs.cdf_fig > 0) {
    std::printf("\n-- Figure %d: FCT CDF (quantile-averaged) --\n",
                figs.cdf_fig);
    stats::emit_cdf(stdout, label("FCT CDF", "SCDA"), scda_s.agg.fct_cdf);
    stats::emit_cdf(stdout, label("FCT CDF", "RandTCP"), rand_s.agg.fct_cdf);
  }
  if (figs.afct_fig > 0) {
    std::printf("\n-- Figure %d: AFCT vs content size (pooled) --\n",
                figs.afct_fig);
    stats::emit_afct(stdout, label("AFCT", "SCDA"), scda_s.agg.afct,
                     figs.afct_size_unit, figs.afct_unit_name);
    stats::emit_afct(stdout, label("AFCT", "RandTCP"), rand_s.agg.afct,
                     figs.afct_size_unit, figs.afct_unit_name);
  }

  std::printf("\n-- summary --\n");
  stats::emit_aggregate_text(stdout, cfg.name + " SCDA", scda_s.agg);
  stats::emit_aggregate_text(stdout, cfg.name + " RandTCP", rand_s.agg);
  const double scda_gp = scda_s.agg.goodput_bps.mean;
  const double rand_gp = rand_s.agg.goodput_bps.mean;
  if (rand_gp > 0) {
    std::printf("# goodput: SCDA %.1f Mbps vs RandTCP %.1f Mbps "
                "(%.1f%% higher, means over %llu seeds)\n",
                scda_gp / 1e6, rand_gp / 1e6,
                100.0 * (scda_gp - rand_gp) / rand_gp,
                static_cast<unsigned long long>(scda_s.agg.runs));
  }
  stats::emit_aggregate_metrics(stdout, scda_s.agg);
  stats::emit_aggregate_metrics(stdout, rand_s.agg);
  std::printf("\n");
}

}  // namespace detail

/// Run both systems — replicated over SCDA_BENCH_SEEDS seeds, sharded over
/// SCDA_BENCH_WORKERS threads — and print every series of the experiment.
inline void run_comparison(const ExperimentConfig& cfg, const FigureIds& figs,
                           const AfctBinning& binning) {
  std::printf("==== %s ====\n", cfg.name.c_str());

  runner::SweepSpec spec;
  spec.base = quick_scaled(cfg);
  spec.base.fluid = bench_fluid();
  spec.binning = binning;
  spec.arms = {
      {"SCDA", core::PlacementPolicy::kScda, transport::TransportKind::kScda},
      {"RandTCP", core::PlacementPolicy::kRandom,
       transport::TransportKind::kTcp},
  };
  spec.seeds = bench_seeds();
  spec.trace_path = trace_path();  // first SCDA run (seed 0) records

  runner::WorkerPool pool(bench_workers());
  const runner::SweepResult res = runner::run_sweep(spec, pool);

  if (spec.seeds == 1) {
    detail::print_single(cfg, figs, res.results[0], res.results[1]);
    return;
  }
  const auto arms = runner::aggregate_sweep(spec, res);
  detail::print_replicated(cfg, figs, arms[0], arms[1]);
}

}  // namespace scda::bench
