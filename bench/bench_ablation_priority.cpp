// Ablation: prioritized rate allocation (paper section IV-A).
//
// Part 1 — weighted shares: concurrent equal-size flows with weights
// 1/2/4 on one bottleneck must finish in inverse-weight order, with live
// allocations split ~1:2:4.
//
// Part 2 — SJF-like policy: short flows get a higher priority weight;
// their AFCT drops versus the equal-weight run while long flows lose
// little (the distributed scheduling-policy emulation the paper sketches).
#include <cstdio>
#include <memory>
#include <vector>

#include "core/cloud.h"
#include "harness.h"
#include "stats/collector.h"
#include "util/units.h"

using namespace scda;

namespace {

core::CloudConfig small_cloud() {
  core::CloudConfig cfg;
  cfg.topology.n_agg = 2;
  cfg.topology.tors_per_agg = 2;
  cfg.topology.servers_per_tor = 4;
  cfg.topology.n_clients = 8;
  cfg.topology.base_bps = util::mbps(200);
  cfg.enable_replication = false;
  return cfg;
}

void weighted_shares() {
  std::printf(
      "-- weighted max-min shares (one bottleneck, weights 1/2/4) --\n");
  sim::Simulator sim(5);
  core::Cloud cloud(sim, small_cloud());
  // All from one client: its uplink is the shared bottleneck.
  cloud.write(0, 1, util::megabytes(50),
              transport::ContentClass::kSemiInteractive, 1.0);
  cloud.write(0, 2, util::megabytes(50),
              transport::ContentClass::kSemiInteractive, 2.0);
  cloud.write(0, 3, util::megabytes(50),
              transport::ContentClass::kSemiInteractive, 4.0);
  sim.run_until(scda::sim::secs(2.0));
  const sim::BitRate r1 = cloud.allocator().flow_rate(scda::net::FlowId{0});
  const sim::BitRate r2 = cloud.allocator().flow_rate(scda::net::FlowId{1});
  const sim::BitRate r3 = cloud.allocator().flow_rate(scda::net::FlowId{2});
  std::printf("allocations: w=1 %.1f Mbps, w=2 %.1f Mbps, w=4 %.1f Mbps\n",
              r1.bps() / 1e6, r2.bps() / 1e6, r3.bps() / 1e6);
  std::printf("ratios: %.2f : %.2f : %.2f (ideal 1 : 2 : 4)\n", r1 / r1,
              r2 / r1, r3 / r1);
}

struct SjfResult {
  double short_afct = 0;
  double long_afct = 0;
};

SjfResult run_sjf(bool boost_short) {
  sim::Simulator sim(7);
  core::Cloud cloud(sim, small_cloud());
  stats::FlowStatsCollector col(cloud);
  // 12 short (500 KB) + 4 long (20 MB) flows from 8 clients, together.
  core::ContentId id = 1;
  for (int i = 0; i < 12; ++i)
    cloud.write(static_cast<std::size_t>(i % 8), id++,
                util::kilobytes(500),
                transport::ContentClass::kSemiInteractive,
                boost_short ? 8.0 : 1.0);
  for (int i = 0; i < 4; ++i)
    cloud.write(static_cast<std::size_t>(i % 8), id++, util::megabytes(20),
                transport::ContentClass::kSemiInteractive, 1.0);
  sim.run_until(scda::sim::secs(120.0));
  SjfResult r;
  int ns = 0, nl = 0;
  for (const auto& rec : col.records()) {
    if (rec.size_bytes < 1000 * 1000) {
      r.short_afct += rec.fct_s;
      ++ns;
    } else {
      r.long_afct += rec.fct_s;
      ++nl;
    }
  }
  if (ns) r.short_afct /= ns;
  if (nl) r.long_afct /= nl;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: prioritized rate allocation (sec IV-A) ====\n");
  weighted_shares();

  std::printf("\n-- SJF emulation via priority weights --\n");
  runner::WorkerPool pool(bench::bench_workers());
  SjfResult eq, sjf;
  pool.run(2, [&](std::size_t j) {
    if (j == 0) {
      eq = run_sjf(false);
    } else {
      sjf = run_sjf(true);
    }
  });
  std::printf("equal weights : short AFCT %.3fs, long AFCT %.3fs\n",
              eq.short_afct, eq.long_afct);
  std::printf("short-boosted : short AFCT %.3fs, long AFCT %.3fs\n",
              sjf.short_afct, sjf.long_afct);
  std::printf("# short-flow AFCT change: %.1f%%  (negative = better)\n",
              100.0 * (sjf.short_afct - eq.short_afct) /
                  (eq.short_afct > 0 ? eq.short_afct : 1));
  return 0;
}
