// Ablation: OpenFlow-switch SJF scheduling (paper section IV-B).
//
// RandTCP traffic through a congested access link, with FIFO vs SJF
// queueing in the switches. SJF serves packets of flows that have sent
// the least so far, emulating shortest-job-first: mice overtake elephants
// and their AFCT drops sharply while elephants finish almost unchanged.
#include <cstdio>
#include <vector>

#include "harness.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "transport/transport_manager.h"
#include "util/units.h"

using namespace scda;

namespace {

struct SjfResult {
  double mice_afct = 0;
  double elephant_afct = 0;
  int mice = 0, elephants = 0;
};

SjfResult run(net::QueueDiscipline d) {
  sim::Simulator sim(17);
  net::Network net(sim);
  const auto a = net.add_node(net::NodeRole::kClient, "a");
  const auto b = net.add_node(net::NodeRole::kServer, "b");
  net.add_duplex(a, b, util::mbps(50), 0.005, 128 * 1500);
  net.build_routes();
  net.link(net.link_between(a, b)).set_discipline(d);
  net.link(net.link_between(b, a)).set_discipline(d);

  transport::TransportManager tm(net);
  SjfResult res;
  tm.set_completion_callback([&](const transport::FlowRecord& r) {
    if (r.size_bytes <= 200 * 1000) {
      res.mice_afct += r.fct();
      ++res.mice;
    } else {
      res.elephant_afct += r.fct();
      ++res.elephants;
    }
  });

  // 3 elephants start first, then mice arrive every 400 ms.
  for (int i = 0; i < 3; ++i) tm.start_tcp_flow(a, b, util::megabytes(25));
  sim::Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    sim.post_at(scda::sim::secs(1.0 + i * 0.4), [&tm, &rng, a, b] {
      tm.start_tcp_flow(a, b, rng.uniform_int(20'000, 200'000));
    });
  }
  sim.run_until(scda::sim::secs(300.0));
  if (res.mice) res.mice_afct /= res.mice;
  if (res.elephants) res.elephant_afct /= res.elephants;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  std::printf("==== ablation: OpenFlow SJF scheduling (sec IV-B) ====\n");
  const std::vector<net::QueueDiscipline> disciplines = {
      net::QueueDiscipline::kFifo, net::QueueDiscipline::kSjf};
  runner::WorkerPool pool(bench::bench_workers());
  const auto results = runner::parallel_map<SjfResult>(
      pool, disciplines,
      [](net::QueueDiscipline d, std::size_t) { return run(d); });
  const SjfResult& fifo = results[0];
  const SjfResult& sjf = results[1];
  std::printf("%-6s mice AFCT %.3fs (%d flows), elephant AFCT %.1fs (%d)\n",
              "FIFO", fifo.mice_afct, fifo.mice, fifo.elephant_afct,
              fifo.elephants);
  std::printf("%-6s mice AFCT %.3fs (%d flows), elephant AFCT %.1fs (%d)\n",
              "SJF", sjf.mice_afct, sjf.mice, sjf.elephant_afct,
              sjf.elephants);
  std::printf("# SJF cuts mice AFCT by %.1f%%; elephants pay %.1f%%\n",
              100.0 * (fifo.mice_afct - sjf.mice_afct) / fifo.mice_afct,
              100.0 * (sjf.elephant_afct - fifo.elephant_afct) /
                  (fifo.elephant_afct > 0 ? fifo.elephant_afct : 1));
  return 0;
}
