// Figures 7-9: YouTube-like video traces INCLUDING control flows.
//
//   Fig. 7 — instantaneous average throughput (KB/s) over 100 s
//   Fig. 8 — content upload time CDF
//   Fig. 9 — AFCT vs file size (MB bins)
//
// Paper parameters: X = 500 Mbps, bandwidth factor K = 3, arrivals scaled
// to 20 of the 2138 YouTube servers of Torres et al.; control flows are the
// <5 KB HTTP exchanges preceding each video. Expected shape: SCDA up to
// ~50% higher instantaneous throughput, most flows finishing in much
// shorter time, AFCT ~50-60% lower and far less jagged than RandTCP.
//
// Replication: SCDA_BENCH_SEEDS=N reruns both arms over N derived seeds
// (sharded across SCDA_BENCH_WORKERS threads) and reports mean series with
// stddev/CI summaries; unset, the output matches the single-run harness.
#include "harness.h"
#include "util/units.h"

int main(int argc, char** argv) {
  scda::bench::init_cli(argc, argv);
  using namespace scda;
  bench::ExperimentConfig cfg;
  cfg.name = "video traces with control flows (figs 7-9)";
  cfg.topology.base_bps = util::mbps(500);
  cfg.topology.k_factor = 3.0;
  cfg.topology.n_clients = 64;
  cfg.driver.end_time_s = 100.0;
  cfg.driver.read_fraction = 0.35;
  cfg.sim_time_s = 115.0;
  cfg.make_generator = [] {
    workload::VideoWorkloadConfig w;
    w.include_control_flows = true;
    w.video_arrival_rate = 2.0;  // scaled to 20 servers (paper X-A1)
    return std::make_unique<workload::VideoWorkload>(w);
  };

  bench::FigureIds figs;
  figs.throughput_fig = 7;
  figs.cdf_fig = 8;
  figs.afct_fig = 9;

  bench::AfctBinning bins;
  bins.bin_bytes = 5e6;   // fig 9 x-axis: 10..90 MB
  bins.max_bytes = 90e6;

  bench::run_comparison(cfg, figs, bins);
  return 0;
}
